/**
 * @file
 * Tests for the set-associative cache array and replacement policies.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace rrm::cache
{
namespace
{

CacheConfig
tinyConfig(ReplacementKind repl = ReplacementKind::LRU)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sizeBytes = 4096; // 64 lines
    cfg.assoc = 4;        // 16 sets
    cfg.lineBytes = 64;
    cfg.replacement = repl;
    return cfg;
}

TEST(Cache, GeometryFromConfig)
{
    Cache c(tinyConfig());
    EXPECT_EQ(c.numSets(), 16u);
}

TEST(Cache, MissThenHitAfterAllocate)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.access(0x1000));
    c.allocate(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.contains(0x1000));
}

TEST(Cache, LineGranularity)
{
    Cache c(tinyConfig());
    c.allocate(0x1000);
    EXPECT_TRUE(c.access(0x1004));
    EXPECT_TRUE(c.access(0x103F));
    EXPECT_FALSE(c.access(0x1040));
}

TEST(Cache, AllocatePresentLinePanics)
{
    Cache c(tinyConfig());
    c.allocate(0x1000);
    EXPECT_THROW(c.allocate(0x1000), PanicError);
}

TEST(Cache, FreeWayMeansNoVictim)
{
    Cache c(tinyConfig());
    for (int i = 0; i < 4; ++i) {
        // Same set (stride = 16 sets * 64 B).
        const Victim v = c.allocate(0x1000 + i * 16 * 64);
        EXPECT_FALSE(v.valid) << i;
    }
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig());
    const Addr base = 0;
    const Addr stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        c.allocate(base + i * stride);
    // Touch lines 0..2, leaving line 3 as LRU.
    c.access(base + 0 * stride);
    c.access(base + 1 * stride);
    c.access(base + 2 * stride);
    const Victim v = c.allocate(base + 4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, base + 3 * stride);
}

TEST(Cache, DirtyBitTravelsWithVictim)
{
    Cache c(tinyConfig());
    const Addr stride = 16 * 64;
    c.allocate(0);
    c.setDirty(0);
    for (int i = 1; i < 4; ++i)
        c.allocate(i * stride);
    // Line 0 is LRU and dirty.
    const Victim v = c.allocate(4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, OwnerIsRecordedAndReturned)
{
    Cache c(tinyConfig());
    c.allocate(0x2000, 3);
    EXPECT_EQ(c.owner(0x2000), 3);
    const Addr stride = 16 * 64;
    for (int i = 1; i < 5; ++i)
        c.allocate(0x2000 + i * stride, i);
    // 0x2000 became the victim of the last allocate.
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(tinyConfig());
    c.allocate(0x40);
    EXPECT_FALSE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));

    c.allocate(0x40);
    c.setDirty(0x40);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.invalidate(0x40)); // already gone
}

TEST(Cache, DirtyOpsOnAbsentLinePanic)
{
    Cache c(tinyConfig());
    EXPECT_THROW(c.setDirty(0x40), PanicError);
    EXPECT_THROW(c.isDirty(0x40), PanicError);
    EXPECT_THROW(c.owner(0x40), PanicError);
}

TEST(Cache, AllocationResetsDirtyBit)
{
    Cache c(tinyConfig());
    const Addr stride = 16 * 64;
    c.allocate(0);
    c.setDirty(0);
    for (int i = 1; i < 5; ++i)
        c.allocate(i * stride);
    // Way reused by a new line: must start clean.
    const Addr newest = 4 * stride;
    EXPECT_TRUE(c.contains(newest));
    EXPECT_FALSE(c.isDirty(newest));
}

TEST(Cache, NumValidLinesTracksAllocations)
{
    Cache c(tinyConfig());
    EXPECT_EQ(c.numValidLines(), 0u);
    c.allocate(0);
    c.allocate(64);
    EXPECT_EQ(c.numValidLines(), 2u);
    c.invalidate(0);
    EXPECT_EQ(c.numValidLines(), 1u);
}

TEST(Cache, StatsCountHitsMissesEvictions)
{
    Cache c(tinyConfig());
    stats::StatGroup g("g");
    c.regStats(g);
    c.access(0); // miss
    c.allocate(0);
    c.access(0); // hit
    const Addr stride = 16 * 64;
    for (int i = 1; i < 5; ++i)
        c.allocate(i * stride); // last one evicts
    auto value = [&](const char *name) {
        return dynamic_cast<const stats::Scalar *>(
                   g.find(std::string("tiny.") + name))
            ->value();
    };
    EXPECT_DOUBLE_EQ(value("misses"), 1.0);
    EXPECT_DOUBLE_EQ(value("hits"), 1.0);
    EXPECT_DOUBLE_EQ(value("evictions"), 1.0);
}

TEST(Cache, BadGeometryPanics)
{
    CacheConfig cfg = tinyConfig();
    cfg.lineBytes = 48;
    EXPECT_THROW(Cache{cfg}, PanicError);

    cfg = tinyConfig();
    cfg.sizeBytes = 4096 + 64; // not whole sets
    EXPECT_THROW(Cache{cfg}, PanicError);
}

TEST(Replacement, FifoIgnoresTouches)
{
    Cache c(tinyConfig(ReplacementKind::FIFO));
    const Addr stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        c.allocate(i * stride);
    // Touch the oldest heavily; FIFO must still evict it.
    for (int i = 0; i < 10; ++i)
        c.access(0);
    const Victim v = c.allocate(4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u);
}

TEST(Replacement, RandomPicksWithinSet)
{
    Cache c(tinyConfig(ReplacementKind::Random));
    const Addr stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        c.allocate(i * stride);
    const Victim v = c.allocate(4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr % stride, 0u);
    EXPECT_LT(v.addr, 4 * stride);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometry, FillsToCapacityWithoutEviction)
{
    const auto [size, assoc] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    Cache c(cfg);
    const std::uint64_t lines = size / 64;
    for (std::uint64_t i = 0; i < lines; ++i) {
        const Victim v = c.allocate(i * 64);
        ASSERT_FALSE(v.valid) << "line " << i;
    }
    EXPECT_EQ(c.numValidLines(), lines);
    // One more in any set must evict.
    const Victim v = c.allocate(lines * 64);
    EXPECT_TRUE(v.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::pair{4096ULL, 1u}, std::pair{4096ULL, 4u},
                      std::pair{32768ULL, 8u},
                      std::pair{65536ULL, 16u}));

} // namespace
} // namespace rrm::cache
