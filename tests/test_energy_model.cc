/**
 * @file
 * Tests for the PCM energy model.
 */

#include <gtest/gtest.h>

#include "pcm/energy_model.hh"

namespace rrm::pcm
{
namespace
{

TEST(EnergyModel, CellsPerBlock)
{
    EnergyModel m;
    // 64 B * 8 bits / 2 bits per MLC cell.
    EXPECT_EQ(m.cellsPerBlock(), 256u);
}

TEST(EnergyModel, CellsPerBlockScalesWithBitsPerCell)
{
    EnergyParams p;
    p.bitsPerCell = 4;
    EXPECT_EQ(EnergyModel(p).cellsPerBlock(), 128u);
}

TEST(EnergyModel, ChargeModelKnownValue)
{
    EnergyModel m;
    // 7-SETs cell write: 1.8 V * (50 uA * 100 ns + 7 * 30 uA * 150 ns)
    //                  = 1.8 * (5e-12 + 31.5e-12) C = 65.7e-12 J.
    EXPECT_NEAR(m.cellWriteEnergyCharge(WriteMode::Sets7), 65.7e-12,
                1e-15);
    // 3-SETs: 1.8 * (5e-12 + 3 * 42 uA * 150 ns) = 1.8 * 23.9e-12.
    EXPECT_NEAR(m.cellWriteEnergyCharge(WriteMode::Sets3),
                1.8 * 23.9e-12, 1e-15);
}

TEST(EnergyModel, BlockWriteFollowsTable1Normalization)
{
    EnergyModel m;
    const double seven = m.blockWriteEnergy(WriteMode::Sets7);
    for (WriteMode mode : allWriteModes) {
        EXPECT_NEAR(m.blockWriteEnergy(mode) / seven,
                    m.normalizedWriteEnergy(mode), 1e-12)
            << writeModeName(mode);
    }
}

TEST(EnergyModel, SevenSetBlockEnergyMatchesChargeModel)
{
    EnergyModel m;
    EXPECT_NEAR(m.blockWriteEnergy(WriteMode::Sets7),
                m.cellWriteEnergyCharge(WriteMode::Sets7) *
                    m.cellsPerBlock(),
                1e-15);
}

TEST(EnergyModel, FastWritesCheaperThanSlow)
{
    EnergyModel m;
    EXPECT_LT(m.blockWriteEnergy(WriteMode::Sets3),
              m.blockWriteEnergy(WriteMode::Sets7));
}

TEST(EnergyModel, RefreshAddsReadEnergy)
{
    EnergyModel m;
    for (WriteMode mode : allWriteModes) {
        EXPECT_NEAR(m.blockRefreshEnergy(mode),
                    m.blockReadEnergy() + m.blockWriteEnergy(mode),
                    1e-15);
    }
}

TEST(EnergyModel, InvalidParamsPanic)
{
    EnergyParams p;
    p.writeVoltage = 0.0;
    EXPECT_THROW(EnergyModel{p}, PanicError);

    EnergyParams q;
    q.bitsPerCell = 0;
    EXPECT_THROW(EnergyModel{q}, PanicError);
}

} // namespace
} // namespace rrm::pcm
