/**
 * @file
 * Write-policy layer tests: the Scheme -> policy factory round-trip,
 * StaticPolicy/RrmPolicy interface behaviour, the RegionMonitor's
 * runtime hot-threshold actuator (invariant reconciliation), and the
 * AdaptiveRrmPolicy feedback law (pressure raises the threshold,
 * drains decay it back, low reuse raises the floor).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "policy/adaptive_rrm_policy.hh"
#include "policy/static_policy.hh"
#include "system/system.hh"

namespace rrm
{
namespace
{

monitor::RrmConfig
smallRrmConfig(unsigned hot_threshold = 4)
{
    monitor::RrmConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    cfg.hotThreshold = hot_threshold;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    return cfg;
}

// ---- Scheme -> policy factory ----

TEST(PolicyFactory, StaticSchemeMakesStaticPolicy)
{
    EventQueue queue;
    const policy::AdaptiveRrmConfig acfg;
    const policy::TenantQosConfig qcfg;
    const policy::TenantLayout layout;
    auto p = sys::Scheme::staticScheme(pcm::WriteMode::Sets5)
                 .makePolicy(smallRrmConfig(), acfg, qcfg, layout, queue);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->kindName(), "static");
    EXPECT_EQ(p->writeModeFor(0x1000), pcm::WriteMode::Sets5);
    EXPECT_EQ(p->accessLatency(), 0u);
    // "Fast writes" are a hybrid-scheme concept: static counts slow.
    EXPECT_FALSE(p->isFastMode(pcm::WriteMode::Sets3));
    EXPECT_FALSE(p->supportsPressureFallback());
    EXPECT_EQ(p->monitor(), nullptr);
    EXPECT_EQ(p->preferredSampleInterval(), 0u);
}

TEST(PolicyFactory, RrmSchemeMakesRrmPolicy)
{
    EventQueue queue;
    const policy::AdaptiveRrmConfig acfg;
    const policy::TenantQosConfig qcfg;
    const policy::TenantLayout layout;
    const monitor::RrmConfig cfg = smallRrmConfig();
    auto p =
        sys::Scheme::rrmScheme().makePolicy(cfg, acfg, qcfg, layout,
                                            queue);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->kindName(), "rrm");
    ASSERT_NE(p->monitor(), nullptr);
    EXPECT_TRUE(p->supportsPressureFallback());
    EXPECT_TRUE(p->isFastMode(cfg.fastMode));
    EXPECT_FALSE(p->isFastMode(cfg.slowMode));
    EXPECT_EQ(p->accessLatency(), cfg.accessLatency);
    EXPECT_EQ(p->preferredSampleInterval(), cfg.decayTickInterval());
}

TEST(PolicyFactory, AdaptiveSchemeMakesAdaptivePolicy)
{
    EventQueue queue;
    const policy::AdaptiveRrmConfig acfg;
    const policy::TenantQosConfig qcfg;
    const policy::TenantLayout layout;
    auto p = sys::Scheme::adaptiveRrmScheme().makePolicy(
        smallRrmConfig(), acfg, qcfg, layout, queue);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->kindName(), "adaptive-rrm");
    EXPECT_NE(p->monitor(), nullptr);
    EXPECT_TRUE(p->supportsPressureFallback());
}

TEST(PolicyFactory, EverySchemeBuildsAPolicy)
{
    const policy::AdaptiveRrmConfig acfg;
    const policy::TenantQosConfig qcfg;
    const policy::TenantLayout layout;
    for (const sys::Scheme &s : sys::allSchemes()) {
        EventQueue queue;
        auto p = s.makePolicy(smallRrmConfig(), acfg, qcfg, layout, queue);
        ASSERT_TRUE(p) << s.name();
        EXPECT_EQ(s.usesMonitor(), p->monitor() != nullptr) << s.name();
    }
}

TEST(PolicyFactory, RrmPolicyDelegatesDecisionsToMonitor)
{
    EventQueue queue;
    const monitor::RrmConfig cfg = smallRrmConfig();
    policy::RrmPolicy p(cfg, queue);
    // Cold block: slow mode. Hot + vector bit: fast mode.
    EXPECT_EQ(p.writeModeFor(0x1000), cfg.slowMode);
    for (unsigned i = 0; i < cfg.hotThreshold + 1; ++i)
        p.registerLlcWrite(0x1000, true);
    EXPECT_EQ(p.writeModeFor(0x1000), cfg.fastMode);
    EXPECT_TRUE(p.monitor()->isHot(0x1000));
}

// ---- RegionMonitor additions backing the adaptive policy ----

TEST(RegionMonitor, DecayEpochHookFiresOncePerDecayTick)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(), queue);
    unsigned fired = 0;
    rrm.setDecayEpochHook([&fired] { ++fired; });
    rrm.runDecayTick();
    rrm.runDecayTick();
    EXPECT_EQ(fired, 2u);
}

TEST(RegionMonitor, RegistrationCountersTrackLookupsAndHits)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(), queue);
    rrm.registerLlcWrite(0x1000, false); // clean: filtered, no lookup
    EXPECT_EQ(rrm.registrationLookups(), 0u);
    rrm.registerLlcWrite(0x1000, true); // miss -> allocate
    rrm.registerLlcWrite(0x1000, true); // hit
    EXPECT_EQ(rrm.registrationLookups(), 2u);
    EXPECT_EQ(rrm.registrationHits(), 1u);
}

TEST(SetHotThreshold, RaiseDemotesEntriesBelowHalfThreshold)
{
    EventQueue queue;
    const monitor::RrmConfig cfg = smallRrmConfig(4);
    monitor::RegionMonitor rrm(cfg, queue);
    std::vector<monitor::RefreshRequest> refreshes;
    rrm.setRefreshCallback([&](const monitor::RefreshRequest &r) {
        refreshes.push_back(r);
    });
    for (unsigned i = 0; i < 5; ++i) // promote + set one vector bit
        rrm.registerLlcWrite(0x1000, true);
    ASSERT_TRUE(rrm.isHot(0x1000));
    ASSERT_TRUE(rrm.shortRetentionBit(0x1000));

    rrm.setHotThreshold(16); // counter 4 < 16/2: must demote
    EXPECT_EQ(rrm.hotThreshold(), 16u);
    EXPECT_FALSE(rrm.isHot(0x1000));
    EXPECT_FALSE(rrm.shortRetentionBit(0x1000));
    // The demotion slow-refreshed the fast-written block.
    ASSERT_FALSE(refreshes.empty());
    EXPECT_EQ(refreshes.back().mode, cfg.slowMode);
    EXPECT_TRUE(refreshes.back().fromDecay);
    rrm.audit();
}

TEST(SetHotThreshold, LowerPromotesQualifyingEntries)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(16), queue);
    for (unsigned i = 0; i < 8; ++i)
        rrm.registerLlcWrite(0x1000, true);
    ASSERT_FALSE(rrm.isHot(0x1000));

    rrm.setHotThreshold(8); // counter 8 meets the new bar
    EXPECT_TRUE(rrm.isHot(0x1000));
    rrm.audit();
}

TEST(SetHotThreshold, ClampsCountersToNewThreshold)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(16), queue);
    for (unsigned i = 0; i < 8; ++i)
        rrm.registerLlcWrite(0x1000, true);

    rrm.setHotThreshold(6);
    EXPECT_EQ(rrm.dirtyWriteCounter(0x1000), 6u);
    EXPECT_TRUE(rrm.isHot(0x1000)); // clamped counter meets the bar
    rrm.audit();
}

// ---- Adaptive feedback law ----

struct AdaptiveFixture
{
    EventQueue queue;
    monitor::RrmConfig cfg = smallRrmConfig(4);
    policy::AdaptiveRrmConfig acfg;
    double pressure = 0.0;
    std::unique_ptr<policy::AdaptiveRrmPolicy> pol;

    AdaptiveFixture()
        : pol(std::make_unique<policy::AdaptiveRrmPolicy>(cfg, acfg,
                                                          queue))
    {
        pol->setPressureProbe([this] { return pressure; });
    }
};

TEST(AdaptivePolicy, PressureDoublesThresholdUpToCap)
{
    AdaptiveFixture f;
    f.pressure = 1.0;
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 8u);
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 16u); // cap: 4 * 4
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 16u);
}

TEST(AdaptivePolicy, DrainedQueuesDecayThresholdBackToBase)
{
    AdaptiveFixture f;
    f.pressure = 1.0;
    for (int i = 0; i < 2; ++i)
        f.pol->adaptNow();
    ASSERT_EQ(f.pol->currentHotThreshold(), 16u);

    f.pressure = 0.0;
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 8u);
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 4u); // back at base
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 4u);
}

TEST(AdaptivePolicy, MidbandPressureHoldsThreshold)
{
    AdaptiveFixture f;
    f.pressure = 0.3; // between pressureLow and pressureHigh
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 4u);
}

TEST(AdaptivePolicy, LowReuseRaisesTheFloor)
{
    AdaptiveFixture f;
    // Streaming phase: one dirty write per region, no hot reuse.
    for (unsigned r = 0; r < 8; ++r) {
        f.pol->registerLlcWrite(static_cast<Addr>(r) * f.cfg.regionBytes,
                                true);
    }
    f.pressure = 0.0;
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 8u); // floor: 2 * base
}

TEST(AdaptivePolicy, MatureHotSetRaisesThreshold)
{
    AdaptiveFixture f;
    // Ten dirty writes to one region: promoted at the 4th, so the
    // last six land in an already-hot region (hot reuse 0.6).
    for (unsigned i = 0; i < 10; ++i)
        f.pol->registerLlcWrite(0x1000, true);
    f.pressure = 0.0;
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 8u);
    // Hysteresis: a mid-band epoch (reuse between reuseDecay and
    // reuseHigh) must not unwind the raise.
    for (unsigned i = 0; i < 2; ++i)
        f.pol->registerLlcWrite(0x1000, true); // hot: reuse 1.0 > ...
    f.pol->registerLlcWrite(0x2000 + f.cfg.regionBytes * 100, true);
    f.pol->registerLlcWrite(0x2000 + f.cfg.regionBytes * 101, true);
    // Epoch: 2 hot hits, 2 cold misses -> reuse 0.5, in [0.30, 0.53).
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 8u);
}

TEST(AdaptivePolicy, ModerateReuseHoldsBaseThreshold)
{
    AdaptiveFixture f;
    // Region A: six writes (two land hot); four streamed regions.
    for (unsigned i = 0; i < 6; ++i)
        f.pol->registerLlcWrite(0x1000, true);
    for (unsigned r = 1; r < 5; ++r) {
        f.pol->registerLlcWrite(static_cast<Addr>(r) * f.cfg.regionBytes,
                                true);
    }
    // Hot reuse 2/10 = 0.2: above reuseLow, below reuseHigh.
    f.pressure = 0.0;
    f.pol->adaptNow();
    EXPECT_EQ(f.pol->currentHotThreshold(), 4u);
}

TEST(AdaptivePolicy, AdaptationKeepsMonitorInvariantsAuditable)
{
    AdaptiveFixture f;
    // Build mixed entry state: one hot region, several warm ones.
    for (unsigned i = 0; i < 5; ++i)
        f.pol->registerLlcWrite(0x1000, true);
    for (unsigned r = 1; r < 5; ++r) {
        for (unsigned i = 0; i < 2; ++i) {
            f.pol->registerLlcWrite(
                static_cast<Addr>(r) * f.cfg.regionBytes, true);
        }
    }
    f.pressure = 1.0;
    f.pol->adaptNow();
    f.pol->monitor()->audit();
    f.pressure = 0.0;
    f.pol->adaptNow();
    f.pol->monitor()->audit();
}

// ---- Adaptive-RRM end to end ----

TEST(AdaptivePolicy, RunsEndToEndThroughTheSystem)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("GemsFDTD");
    cfg.scheme = sys::parseScheme("Adaptive-RRM");
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.012;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    sys::System system(std::move(cfg));
    const sys::SimResults r = system.run();
    EXPECT_EQ(r.scheme, "Adaptive-RRM");
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_GT(r.demandWrites, 0u);
    EXPECT_NE(system.statRoot().find("policy.hotThreshold"), nullptr);
    EXPECT_EQ(system.runAudits(), 0u);
}

} // namespace
} // namespace rrm
