/**
 * @file
 * Deep-audit tests: healthy components must pass their audit() with
 * zero violations, and deliberately corrupted state (seeded through
 * the test-only backdoors) must be caught. If an invariant check is
 * removed from an audit implementation, the corruption test for it
 * fails loudly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"
#include "common/auditable.hh"
#include "common/random.hh"
#include "memctrl/start_gap.hh"
#include "pcm/wear_tracker.hh"
#include "rrm/region_monitor.hh"
#include "sim/event_queue.hh"
#include "system/system.hh"

namespace rrm
{
namespace
{

using check::FailurePolicy;
using check::ScopedFailurePolicy;

/** Audits run under LogAndCount so runAudit() can report a count. */
class AuditTest : public ::testing::Test
{
  protected:
    void SetUp() override { check::resetViolations(); }
    void TearDown() override { check::resetViolations(); }
};

// ---------------------------------------------------------------------
// RegionMonitor
// ---------------------------------------------------------------------

monitor::RrmConfig
smallRrmConfig()
{
    monitor::RrmConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    cfg.hotThreshold = 4;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    return cfg;
}

struct RrmFixture
{
    EventQueue queue;
    monitor::RrmConfig cfg;
    monitor::RegionMonitor rrm;

    RrmFixture() : cfg(smallRrmConfig()), rrm(cfg, queue)
    {
        rrm.setRefreshCallback([](const monitor::RefreshRequest &) {});
    }

    void
    dirtyWrites(Addr addr, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            rrm.registerLlcWrite(addr, true);
    }
};

TEST_F(AuditTest, HealthyRegionMonitorPassesAudit)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    EXPECT_EQ(runAudit(f.rrm), 0u);

    // Populate: cold entries, a hot entry with vector bits, decay.
    f.dirtyWrites(0x1000, 1);
    f.dirtyWrites(0x5000, f.cfg.hotThreshold + 3);
    f.dirtyWrites(0x5040, 2);
    f.rrm.runDecayTick();
    ASSERT_TRUE(f.rrm.isHot(0x5000));
    EXPECT_EQ(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesCorruptDirtyWriteCounter)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    f.dirtyWrites(0x1000, 2);
    monitor::RegionMonitorTestAccess::corruptDirtyWriteCounter(
        f.rrm, 0x1000, f.cfg.hotThreshold + 5);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesCorruptHotFlag)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    // Hot with a dirty-write counter far below promotion level.
    f.dirtyWrites(0x1000, 1);
    monitor::RegionMonitorTestAccess::corruptHotFlag(f.rrm, 0x1000,
                                                     true);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesVectorBitOnColdEntry)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    f.dirtyWrites(0x1000, 1);
    ASSERT_FALSE(f.rrm.isHot(0x1000));
    monitor::RegionMonitorTestAccess::corruptVectorBit(f.rrm, 0x1040);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesLruStampBeyondClock)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    f.dirtyWrites(0x1000, 1);
    // A stamp the LRU clock has never handed out.
    monitor::RegionMonitorTestAccess::corruptLruStamp(
        f.rrm, 0x1000, std::uint64_t(1) << 40);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesCorruptDecayCounter)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    f.dirtyWrites(0x1000, 1);
    monitor::RegionMonitorTestAccess::corruptDecayCounter(
        f.rrm, 0x1000, f.cfg.decayTicksPerInterval + 1);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesDuplicateLruStamps)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    // Two regions in the same set (4 KB regions, 4 sets: region ids
    // 1 and 5 both index set 1).
    f.dirtyWrites(0x1000, 1);
    f.dirtyWrites(0x5000, 1);
    monitor::RegionMonitorTestAccess::corruptLruStamp(f.rrm, 0x1000, 1);
    monitor::RegionMonitorTestAccess::corruptLruStamp(f.rrm, 0x5000, 1);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, AuditCatchesEntryInWrongSet)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    RrmFixture f;
    f.dirtyWrites(0x1000, 1);
    // Region id 2 indexes set 2, but the entry lives in set 1.
    monitor::RegionMonitorTestAccess::corruptRegionId(f.rrm, 0x1000, 2);
    EXPECT_GT(runAudit(f.rrm), 0u);
}

TEST_F(AuditTest, RegionMonitorCorruptionThrowsUnderThrowPolicy)
{
    ScopedFailurePolicy policy(FailurePolicy::Throw);
    RrmFixture f;
    f.dirtyWrites(0x1000, 1);
    monitor::RegionMonitorTestAccess::corruptHotFlag(f.rrm, 0x1000,
                                                     true);
    EXPECT_THROW(f.rrm.audit(), check::CheckError);
}

// ---------------------------------------------------------------------
// Start-Gap wear leveling
// ---------------------------------------------------------------------

TEST_F(AuditTest, StartGapDomainPassesAuditThroughRotation)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    memctrl::StartGapDomain d(64, 4);
    d.audit();
    // Sweep more than one full gap rotation, auditing as we go.
    for (int i = 0; i < 300; ++i) {
        d.onWrite();
        d.audit();
    }
    EXPECT_GT(d.gapMoves(), 64u);
    EXPECT_EQ(check::violationCount(check::ViolationKind::Audit), 0u);
}

TEST_F(AuditTest, AuditCatchesStartOutOfRange)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    memctrl::StartGapDomain d(64, 4);
    memctrl::StartGapTestAccess::setStart(d, 64); // valid: 0..63
    const std::uint64_t before =
        check::violationCount(check::ViolationKind::Audit);
    d.audit();
    EXPECT_GT(check::violationCount(check::ViolationKind::Audit),
              before);
}

TEST_F(AuditTest, AuditCatchesGapOutOfRange)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    memctrl::StartGapDomain d(64, 4);
    memctrl::StartGapTestAccess::setGap(d, 66); // valid: 0..64
    const std::uint64_t before =
        check::violationCount(check::ViolationKind::Audit);
    d.audit();
    EXPECT_GT(check::violationCount(check::ViolationKind::Audit),
              before);
}

TEST_F(AuditTest, AuditCatchesRotationBookkeepingDrift)
{
    ScopedFailurePolicy policy(FailurePolicy::Throw);
    memctrl::StartGapDomain d(64, 4);
    memctrl::StartGapTestAccess::setWritesSinceMove(d, 9); // period 4
    EXPECT_THROW(d.audit(), check::CheckError);
}

TEST_F(AuditTest, StartGapRemapperPassesAuditUnderTraffic)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    memctrl::StartGapParams params;
    params.lineBytes = 256;
    params.linesPerDomain = 128;
    params.gapWritePeriod = 8;
    memctrl::StartGapRemapper remapper(256_KiB, params);
    Random rng(7);
    for (int i = 0; i < 5000; ++i)
        remapper.onWrite(rng.uniform(256_KiB / 256) * 256);
    EXPECT_EQ(runAudit(remapper), 0u);
    EXPECT_GT(remapper.totalGapMoves(), 0u);
}

// ---------------------------------------------------------------------
// Event queue, wear tracker, cache hierarchy
// ---------------------------------------------------------------------

TEST_F(AuditTest, EventQueuePassesAuditWhilePendingAndAfterRun)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 32; ++i)
        q.schedule(Tick(100 + 13 * i), [&fired] { ++fired; });
    EXPECT_EQ(runAudit(q), 0u);
    q.run(Tick(250));
    EXPECT_EQ(runAudit(q), 0u);
    q.run();
    EXPECT_EQ(fired, 32);
    EXPECT_EQ(runAudit(q), 0u);
}

TEST_F(AuditTest, EventQueueRunHonoursEventCap)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(Tick(10 * (i + 1)), [&fired] { ++fired; });
    // A capped run stops mid-way and must not fast-forward time.
    EXPECT_EQ(q.run(Tick(1000), 3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), Tick(30));
    EXPECT_EQ(q.run(Tick(1000)), 7u);
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.now(), Tick(1000));
}

TEST_F(AuditTest, WearTrackerPassesAuditUnderTraffic)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    pcm::WearTracker wear(1_MiB, 4_KiB, 64);
    Random rng(11);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.uniform(1_MiB / 64) * 64;
        wear.recordBlockWrite(addr, i % 3 == 0
                                        ? pcm::WearCause::RrmRefresh
                                        : pcm::WearCause::DemandWrite);
    }
    wear.recordGlobalRefresh(500);
    EXPECT_EQ(runAudit(wear), 0u);
}

TEST_F(AuditTest, CacheHierarchyPassesAuditUnderRandomTraffic)
{
    ScopedFailurePolicy policy(FailurePolicy::LogAndCount);
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.l1.name = "l1";
    cfg.l1.sizeBytes = 512;
    cfg.l1.assoc = 4;
    cfg.l2.name = "l2";
    cfg.l2.sizeBytes = 1024;
    cfg.l2.assoc = 4;
    cfg.llc.name = "llc";
    cfg.llc.sizeBytes = 4096;
    cfg.llc.assoc = 4;
    cache::CacheHierarchy h(cfg);
    Random rng(1234);
    for (int i = 0; i < 10000; ++i) {
        const unsigned core = static_cast<unsigned>(rng.uniform(2));
        const Addr addr = rng.uniform(512) * 64;
        const bool is_write = rng.chance(0.4);
        if (h.access(core, addr, is_write).llcMiss)
            h.fill(core, addr, is_write);
        if (i % 500 == 0) {
            ASSERT_EQ(runAudit(h), 0u) << "iteration " << i;
        }
    }
    EXPECT_EQ(runAudit(h), 0u);
}

// ---------------------------------------------------------------------
// Whole-system periodic audits
// ---------------------------------------------------------------------

sys::SystemConfig
auditedConfig(std::uint64_t audit_every)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("GemsFDTD");
    cfg.scheme = sys::Scheme::rrmScheme();
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.004;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    cfg.auditEveryEvents = audit_every;
    return cfg;
}

TEST_F(AuditTest, SystemRunsCleanWithAggressiveAuditCadence)
{
    // Throw policy: any invariant violation fails this test.
    ScopedFailurePolicy policy(FailurePolicy::Throw);
    sys::System system(auditedConfig(200));
    const sys::SimResults r = system.run();
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_EQ(system.runAudits(), 0u);
}

TEST_F(AuditTest, PeriodicAuditsDoNotPerturbTheSimulation)
{
    ScopedFailurePolicy policy(FailurePolicy::Throw);
    sys::System audited(auditedConfig(500));
    sys::System plain(auditedConfig(0));
    const sys::SimResults a = audited.run();
    const sys::SimResults b = plain.run();
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_DOUBLE_EQ(a.aggregateIpc, b.aggregateIpc);
}

} // namespace
} // namespace rrm
