/**
 * @file
 * Speed-report tests: schema shape, totals accounting, and the
 * determinism contract bench_speed relies on — under
 * SOURCE_DATE_EPOCH every wall metric pins to 0, so the report is
 * byte-identical for any --jobs value (only plan-derived fields
 * remain: ids, statuses, event counts).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "run/runner.hh"
#include "run/speed_report.hh"
#include "system/system.hh"

namespace rrm::run
{
namespace
{

RunPlan
smallPlan()
{
    RunPlan plan;
    for (const char *scheme : {"Static-7-SETs", "RRM"}) {
        sys::SystemConfig cfg;
        cfg.workload = trace::workloadFromName("GemsFDTD");
        cfg.scheme = sys::parseScheme(scheme);
        cfg.windowSeconds = 0.002;
        plan.add(std::move(cfg));
    }
    return plan;
}

std::string
reportFor(unsigned jobs)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    const RunReport report = Runner(opts).execute(smallPlan());
    std::ostringstream os;
    writeSpeedReport(os, "bench_speed", report);
    return os.str();
}

class SpeedReport : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Pin the clock: wall metrics collapse to 0 and the report
        // becomes a pure function of the plan.
        setenv("SOURCE_DATE_EPOCH", "0", /*overwrite=*/0);
    }
};

TEST_F(SpeedReport, SchemaCarriesRunsAndTotals)
{
    const std::string text = reportFor(1);
    EXPECT_NE(text.find("\"schemaVersion\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"bench\": \"bench_speed\""),
              std::string::npos);
    EXPECT_NE(text.find("\"GemsFDTD.Static-7-SETs\""),
              std::string::npos);
    EXPECT_NE(text.find("\"GemsFDTD.RRM\""), std::string::npos);
    EXPECT_NE(text.find("\"eventsExecuted\""), std::string::npos);
    EXPECT_NE(text.find("\"wallSeconds\""), std::string::npos);
    EXPECT_NE(text.find("\"eventsPerSecond\""), std::string::npos);
    EXPECT_NE(text.find("\"totals\""), std::string::npos);
    EXPECT_NE(text.find("\"status\": \"ok\""), std::string::npos);
}

TEST_F(SpeedReport, ByteIdenticalAcrossJobCounts)
{
    const std::string serial = reportFor(1);
    const std::string parallel = reportFor(4);
    EXPECT_EQ(serial, parallel)
        << "BENCH_speed.json must not depend on the worker count "
           "under a pinned clock";
}

TEST_F(SpeedReport, EventCountsAreNonZeroAndDeterministic)
{
    const std::string a = reportFor(2);
    const std::string b = reportFor(2);
    EXPECT_EQ(a, b);
    // The runs did real work: some eventsExecuted field is non-zero.
    EXPECT_EQ(a.find("\"eventsExecuted\": 0,"), std::string::npos)
        << "every run reported zero events:\n"
        << a;
}

} // namespace
} // namespace rrm::run
