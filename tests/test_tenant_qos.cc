/**
 * @file
 * Multi-tenant QoS layer tests (DESIGN.md section 17): the
 * TenantLayout address mapping, the TenantQosPolicy boost allotment
 * (filter bypass inside the quota, filtered path past it, epoch
 * rollover, noisy detection and the optional demotion lever), the
 * fairness metrics, whole-system multi-tenant runs, and checkpoint
 * resume byte-identity under RRM-QoS.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "policy/rrm_policy.hh"
#include "policy/tenant_qos_policy.hh"
#include "system/fairness.hh"
#include "system/system.hh"

namespace rrm::sys
{
namespace
{

namespace fs = std::filesystem;

// ---- TenantLayout ----

TEST(TenantLayout, DefaultLayoutMapsEverythingToTenantZero)
{
    const policy::TenantLayout layout;
    EXPECT_EQ(layout.numTenants(), 1u);
    EXPECT_EQ(layout.tenantOfAddr(0), 0u);
    EXPECT_EQ(layout.tenantOfAddr(0xdeadbeef), 0u);
    EXPECT_EQ(layout.coresPerTenant(), (std::vector<unsigned>{1}));
}

TEST(TenantLayout, AddressSlicesFollowTheCoreOwnership)
{
    policy::TenantLayout layout;
    layout.tenantOf = {0, 0, 1, 1};
    layout.coreSliceBytes = 1u << 20;
    EXPECT_EQ(layout.numTenants(), 2u);
    EXPECT_EQ(layout.coresPerTenant(),
              (std::vector<unsigned>{2, 2}));
    EXPECT_EQ(layout.tenantOfAddr(0), 0u);
    EXPECT_EQ(layout.tenantOfAddr((1u << 20) - 1), 0u);
    EXPECT_EQ(layout.tenantOfAddr(1u << 21), 1u);
    EXPECT_EQ(layout.tenantOfAddr(3u << 20), 1u);
    // Beyond the last slice clamps to the last core's tenant.
    EXPECT_EQ(layout.tenantOfAddr(1ull << 40), 1u);
}

// ---- TenantQosConfig validation ----

TEST(TenantQosConfig, CollectErrorsFlagsBadKnobs)
{
    policy::TenantQosConfig cfg;
    std::vector<std::string> errors;
    cfg.collectErrors(errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_FALSE(cfg.isCustomized());

    cfg.budgetFactor = 0.0;
    cfg.noisyFactor = 0.5;
    cfg.collectErrors(errors);
    EXPECT_EQ(errors.size(), 2u);
    EXPECT_TRUE(cfg.isCustomized());
}

// ---- TenantQosPolicy ----

monitor::RrmConfig
smallRrmConfig()
{
    monitor::RrmConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    cfg.hotThreshold = 4;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    return cfg;
}

policy::TenantLayout
twoTenantLayout()
{
    policy::TenantLayout layout;
    layout.tenantOf = {0, 1};
    layout.coreSliceBytes = 1u << 20;
    return layout;
}

std::unique_ptr<policy::TenantQosPolicy>
makeQosPolicy(EventQueue &queue, const policy::TenantQosConfig &qcfg,
              const policy::TenantLayout &layout)
{
    auto inner =
        std::make_unique<policy::RrmPolicy>(smallRrmConfig(), queue);
    return std::make_unique<policy::TenantQosPolicy>(
        std::move(inner), qcfg, layout, queue);
}

TEST(TenantQosPolicy, QuotaSplitsTheEpochBudgetByCoreShare)
{
    // Base budget: numSets * assoc * hotThreshold /
    // decayTicksPerInterval = 4 * 2 * 4 / 16 = 2 per epoch; x8
    // budgetFactor = 16, split 3:1 across a 4-core layout.
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0;
    policy::TenantLayout layout;
    layout.tenantOf = {0, 0, 0, 1};
    layout.coreSliceBytes = 1u << 20;
    auto p = makeQosPolicy(queue, qcfg, layout);
    EXPECT_EQ(p->kindName(), "rrm-qos");
    EXPECT_EQ(p->tenantQuota(0), 12u);
    EXPECT_EQ(p->tenantQuota(1), 4u);
}

TEST(TenantQosPolicy, BoostedRegistrationsBypassTheStreamingFilter)
{
    // Clean (was_dirty = false) writes normally never promote under
    // the dirty-write filter; inside the allotment they must.
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0; // quota 8 per tenant on a 1:1 layout
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());
    const monitor::RrmConfig cfg = smallRrmConfig();

    const Addr hot = 0x1000; // tenant 0
    EXPECT_EQ(p->writeModeFor(hot), cfg.slowMode);
    for (int i = 0; i < 6; ++i)
        p->registerLlcWrite(hot, /*was_dirty=*/false);
    EXPECT_EQ(p->writeModeFor(hot), cfg.fastMode);
    EXPECT_EQ(p->tenantBoosted(0), 6u);
    EXPECT_EQ(p->tenantBoosted(1), 0u);
}

TEST(TenantQosPolicy, PastTheAllotmentTheFilterApplies)
{
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0; // quota 8 per tenant on a 1:1 layout
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());
    const monitor::RrmConfig cfg = smallRrmConfig();

    // Exhaust tenant 0's allotment on one region...
    const Addr junk = 0x0;
    for (std::uint64_t i = 0; i < p->tenantQuota(0); ++i)
        p->registerLlcWrite(junk, /*was_dirty=*/false);
    EXPECT_EQ(p->tenantBoosted(0), p->tenantQuota(0));

    // ...then clean writes to another region are filtered out and
    // never promote it, no matter how many arrive.
    const Addr cold = 0x80000; // still tenant 0
    for (int i = 0; i < 8; ++i)
        p->registerLlcWrite(cold, /*was_dirty=*/false);
    EXPECT_EQ(p->writeModeFor(cold), cfg.slowMode);
    EXPECT_EQ(p->tenantBoosted(0), p->tenantQuota(0));
}

TEST(TenantQosPolicy, EpochRolloverRefillsTheAllotment)
{
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0;
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());

    const std::uint64_t quota = p->tenantQuota(0);
    for (std::uint64_t i = 0; i < quota + 4; ++i)
        p->registerLlcWrite(0x0, /*was_dirty=*/false);
    EXPECT_EQ(p->tenantBoosted(0), quota);

    p->rolloverNow();
    p->registerLlcWrite(0x0, /*was_dirty=*/false);
    EXPECT_EQ(p->tenantBoosted(0), quota + 1);
}

TEST(TenantQosPolicy, NoisyDetectionIsPerTenantAndPerEpoch)
{
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0;
    qcfg.noisyFactor = 2.0;
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());

    // Tenant 0 storms past 2x its quota; tenant 1 stays modest.
    const std::uint64_t storm = 2 * p->tenantQuota(0) + 1;
    for (std::uint64_t i = 0; i < storm; ++i)
        p->registerLlcWrite(0x0, /*was_dirty=*/true);
    p->registerLlcWrite(1u << 20, /*was_dirty=*/true);

    EXPECT_FALSE(p->tenantNoisy(0)); // flags apply to the NEXT epoch
    p->rolloverNow();
    EXPECT_TRUE(p->tenantNoisy(0));
    EXPECT_FALSE(p->tenantNoisy(1));

    // A quiet epoch clears the flag again.
    p->rolloverNow();
    EXPECT_FALSE(p->tenantNoisy(0));
}

TEST(TenantQosPolicy, DefaultNoisyHandlingKeepsWritesFlowing)
{
    // demoteNoisy is off by default: a noisy tenant keeps its write
    // modes and its registrations (slow writes would hold the shared
    // banks longer, hurting exactly the tenants QoS protects).
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0;
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());
    const monitor::RrmConfig cfg = smallRrmConfig();

    const Addr hot = 0x1000;
    for (int i = 0; i < 6; ++i)
        p->registerLlcWrite(hot, /*was_dirty=*/false);
    ASSERT_EQ(p->writeModeFor(hot), cfg.fastMode);

    for (std::uint64_t i = 0; i < 3 * p->tenantQuota(0); ++i)
        p->registerLlcWrite(0x0, /*was_dirty=*/true);
    p->rolloverNow();
    ASSERT_TRUE(p->tenantNoisy(0));
    EXPECT_EQ(p->writeModeFor(hot), cfg.fastMode);
    p->registerLlcWrite(hot, /*was_dirty=*/true);
    EXPECT_EQ(p->tenantThrottled(0), 0u);
}

TEST(TenantQosPolicy, DemoteNoisyShedsWritesAndRegistrations)
{
    EventQueue queue;
    policy::TenantQosConfig qcfg;
    qcfg.budgetFactor = 8.0;
    qcfg.demoteNoisy = true;
    auto p = makeQosPolicy(queue, qcfg, twoTenantLayout());
    const monitor::RrmConfig cfg = smallRrmConfig();

    const Addr hot = 0x1000;       // tenant 0
    const Addr other = 0x100000;   // tenant 1
    for (int i = 0; i < 6; ++i)
        p->registerLlcWrite(hot, /*was_dirty=*/false);
    ASSERT_EQ(p->writeModeFor(hot), cfg.fastMode);

    for (std::uint64_t i = 0; i < 3 * p->tenantQuota(0); ++i)
        p->registerLlcWrite(0x0, /*was_dirty=*/true);
    p->rolloverNow();
    ASSERT_TRUE(p->tenantNoisy(0));

    // The noisy tenant demotes to the slow mode — even its hot
    // blocks — and its registrations are dropped; the neighbour is
    // untouched.
    EXPECT_EQ(p->writeModeFor(hot), cfg.slowMode);
    p->registerLlcWrite(hot, /*was_dirty=*/true);
    EXPECT_EQ(p->tenantThrottled(0), 1u);
    EXPECT_EQ(p->writeModeFor(other), cfg.slowMode);
    p->registerLlcWrite(other, /*was_dirty=*/true);
    EXPECT_EQ(p->tenantThrottled(1), 0u);
}

// ---- Fairness metrics ----

TEST(Fairness, FormulasMatchTheHandComputedValues)
{
    const FairnessReport r = computeFairness(
        /*mixed*/ {1.0, 0.5}, /*tenants*/ {0, 1}, /*solo*/ {2.0, 2.0});
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 2.0);
    EXPECT_DOUBLE_EQ(r.tenants[1].slowdown, 4.0);
    EXPECT_DOUBLE_EQ(r.tenants[0].weightedSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(r.tenants[1].weightedSpeedup, 0.25);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, 0.75);
    EXPECT_DOUBLE_EQ(r.unfairness, 2.0);
}

TEST(Fairness, TenantSlowdownAveragesItsCores)
{
    const FairnessReport r =
        computeFairness({1.0, 0.5, 2.0}, {0, 0, 1}, {2.0, 2.0, 2.0});
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].cores, (std::vector<unsigned>{0, 1}));
    EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 3.0); // mean of 2 and 4
    EXPECT_DOUBLE_EQ(r.tenants[1].slowdown, 1.0);
    EXPECT_DOUBLE_EQ(r.unfairness, 3.0);
}

TEST(Fairness, ZeroIpcCoresAreSkippedNotPoisonous)
{
    const FairnessReport r =
        computeFairness({1.0, 0.5}, {0, 1}, {2.0, 0.0});
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(r.tenants[1].slowdown, 0.0);
}

TEST(Fairness, EmptyTenantMapMeansOneTenant)
{
    const FairnessReport r = computeFairness({1.0, 1.0}, {}, {2.0, 2.0});
    ASSERT_EQ(r.tenants.size(), 1u);
    EXPECT_EQ(r.tenants[0].cores, (std::vector<unsigned>{0, 1}));
    EXPECT_DOUBLE_EQ(r.unfairness, 1.0);
}

// ---- Whole-system multi-tenant runs ----

SystemConfig
tenantQuickConfig(const Scheme &scheme)
{
    SystemConfig cfg;
    cfg.workload =
        trace::workloadFromSpec("lbm:2,GemsFDTD:2", "0,0,1,1");
    cfg.scheme = scheme;
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.012;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    return cfg;
}

TEST(TenantSystem, MultiTenantRunPopulatesPerTenantResults)
{
    System system(tenantQuickConfig(Scheme::rrmQosScheme()));
    const SimResults r = system.run();
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].cores, (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(r.tenants[1].cores, (std::vector<unsigned>{2, 3}));

    std::uint64_t instructions = 0;
    double ipc = 0.0;
    for (const auto &t : r.tenants) {
        EXPECT_GT(t.instructions, 0u) << "tenant " << t.tenant;
        EXPECT_GT(t.ipc, 0.0) << "tenant " << t.tenant;
        instructions += t.instructions;
        ipc += t.ipc;
    }
    EXPECT_EQ(instructions, r.totalInstructions);
    double core_ipc = 0.0;
    for (const double v : r.ipcPerCore)
        core_ipc += v;
    EXPECT_NEAR(ipc, core_ipc, 1e-9);
}

TEST(TenantSystem, SingleTenantRunsKeepTheTenantSectionEmpty)
{
    SystemConfig cfg = tenantQuickConfig(Scheme::rrmScheme());
    cfg.workload = trace::workloadFromName("lbm");
    System system(std::move(cfg));
    const SimResults r = system.run();
    EXPECT_TRUE(r.tenants.empty());
}

TEST(TenantSystem, MultiTenantRunsAreDeterministic)
{
    System a(tenantQuickConfig(Scheme::rrmQosScheme()));
    System b(tenantQuickConfig(Scheme::rrmQosScheme()));
    const SimResults ra = a.run();
    const SimResults rb = b.run();
    ASSERT_EQ(ra.tenants.size(), rb.tenants.size());
    for (std::size_t t = 0; t < ra.tenants.size(); ++t) {
        EXPECT_EQ(ra.tenants[t].instructions,
                  rb.tenants[t].instructions);
        EXPECT_EQ(ra.tenants[t].fastWrites, rb.tenants[t].fastWrites);
    }
}

TEST(TenantSystem, ValidationRejectsBadTenantGrouping)
{
    SystemConfig cfg = tenantQuickConfig(Scheme::rrmQosScheme());
    cfg.workload.tenantOf = {0, 0, 1}; // 3 ids, 4 cores
    const std::vector<std::string> errors = cfg.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("3"), std::string::npos);
    EXPECT_NE(errors[0].find("4"), std::string::npos);
}

// ---- Checkpoint resume byte-identity under RRM-QoS ----

fs::path
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("rrm_test_tenant_" + std::to_string(::getpid()) + "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

TEST(TenantCkpt, ResumeUnderRrmQosIsByteIdentical)
{
    ::setenv("SOURCE_DATE_EPOCH", "1700000000", 1);
    const fs::path ref_dir = freshDir("qos_ref");
    SystemConfig cfg = tenantQuickConfig(Scheme::rrmQosScheme());
    cfg.windowSeconds = 0.024;
    cfg.checkpointEveryEpochs = 1;
    cfg.checkpointDir = ref_dir.string();
    cfg.obs.runRecordFile = (ref_dir / "rec.json").string();

    SystemConfig ref_cfg = cfg;
    System reference(std::move(ref_cfg));
    reference.run();
    const std::string ref_record = slurp(ref_dir / "rec.json");

    // Drop the -final checkpoint so the resume starts mid-run.
    std::vector<fs::path> ckpts;
    for (const auto &entry : fs::directory_iterator(ref_dir)) {
        if (entry.path().extension() != ".rckpt")
            continue;
        if (entry.path().filename().string().find("-final") !=
            std::string::npos) {
            fs::remove(entry.path());
            continue;
        }
        ckpts.push_back(entry.path());
    }
    ASSERT_GE(ckpts.size(), 2u)
        << "window too short to publish mid-run checkpoints";

    SystemConfig resume_cfg = cfg;
    resume_cfg.obs.runRecordFile = (ref_dir / "rec_resume.json").string();
    resume_cfg.resumeFromCheckpoint = true;
    System resumed(std::move(resume_cfg));
    resumed.run();
    EXPECT_GT(resumed.resumedFromEpoch(), 0u)
        << "resume fell back to a cold start";
    EXPECT_EQ(slurp(ref_dir / "rec_resume.json"), ref_record)
        << "multi-tenant resume diverged from the reference run";
}

TEST(TenantCkpt, TenantGroupingIsPartOfTheFingerprint)
{
    ::setenv("SOURCE_DATE_EPOCH", "1700000000", 1);
    const fs::path ref_dir = freshDir("qos_fp");
    SystemConfig cfg = tenantQuickConfig(Scheme::rrmQosScheme());
    cfg.checkpointEveryEpochs = 1;
    cfg.checkpointDir = ref_dir.string();
    cfg.obs.runRecordFile = (ref_dir / "rec.json").string();

    SystemConfig ref_cfg = cfg;
    System reference(std::move(ref_cfg));
    reference.run();

    // Same mix, different tenant grouping: a different run. The
    // resume must refuse the foreign checkpoints and start cold.
    SystemConfig other = cfg;
    other.workload =
        trace::workloadFromSpec("lbm:2,GemsFDTD:2", "0,1,1,1");
    other.obs.runRecordFile = (ref_dir / "rec_other.json").string();
    other.resumeFromCheckpoint = true;
    System resumed(std::move(other));
    resumed.run();
    EXPECT_EQ(resumed.resumedFromEpoch(), 0u);
}

} // namespace
} // namespace rrm::sys
