/**
 * @file
 * This translation unit is compiled with -DRRM_TRACE_DISABLED (see
 * tests/CMakeLists.txt): RRM_TRACE must expand to nothing — no sink
 * access, no field evaluation — while the surrounding code still
 * compiles unchanged.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace rrm::obs;

#ifndef RRM_TRACE_DISABLED
#error "this test must be compiled with RRM_TRACE_DISABLED"
#endif

TEST(TraceDisabled, MacroCompilesOutEntirely)
{
    TraceSink sink(8);
    int evaluations = 0;
    const auto costly = [&] {
        ++evaluations;
        return 1.0;
    };

    RRM_TRACE(&sink, 1, TraceCategory::Refresh, "r",
              RRM_TF("v", costly()));
    RRM_TRACE(&sink, 2, TraceCategory::Queue, "q", RRM_TF("a", 1),
              RRM_TF("b", 2), RRM_TF("c", 3), RRM_TF("d", 4));

    (void)costly; // the compiled-out macro references nothing
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(sink.recorded(), 0u);
    EXPECT_EQ(sink.bufferedCount(), 0u);
}

TEST(TraceDisabled, DirectSinkUseStillWorks)
{
    // Only the macro is compiled out; the sink API itself remains.
    TraceSink sink(8);
    sink.record(makeTraceEvent(1, TraceCategory::Refresh, "r"));
    EXPECT_EQ(sink.recorded(), 1u);
}
