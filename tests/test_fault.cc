/**
 * @file
 * The fault layer: retention-deadline arithmetic (including the
 * 2.01 s / 0.01 s guardband boundary), deterministic fault draws,
 * ECP repair and line retirement, refresh holds, the refresh-pressure
 * fallback, runner timeouts/retries, and the end-to-end contract that
 * the RRM keeps retention violations at zero where Static-3-SETs
 * accumulates them — with byte-identical fault stats across worker
 * counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "fault/fault_config.hh"
#include "fault/fault_injector.hh"
#include "fault/repair.hh"
#include "fault/retention_tracker.hh"
#include "memctrl/controller.hh"
#include "rrm/region_monitor.hh"
#include "rrm/rrm_config.hh"
#include "run/runner.hh"

namespace rrm::fault
{
namespace
{

namespace fs = std::filesystem;

class FaultTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        check::setFailurePolicy(check::FailurePolicy::Throw);
    }
};

// ---- RetentionTracker ----

TEST_F(FaultTest, TracksOnlyShortRetentionModes)
{
    const RetentionTracker t(1.0, 3.0, 0.0);
    EXPECT_TRUE(t.tracks(pcm::WriteMode::Sets3));
    EXPECT_FALSE(t.tracks(pcm::WriteMode::Sets4)); // 24.05 s
    EXPECT_FALSE(t.tracks(pcm::WriteMode::Sets7)); // 3054.9 s
}

TEST_F(FaultTest, DeadlineMatchesTable1RetentionAtNativeScale)
{
    const RetentionTracker t(1.0, 3.0, 0.0);
    EXPECT_EQ(t.retentionTicks(pcm::WriteMode::Sets3),
              secondsToTicks(2.01));
}

TEST_F(FaultTest, GuardbandAgainstRrmRefreshCadenceIsTenMillis)
{
    // The RRM refreshes every (2.01 - 0.01) s while the tracker
    // expires 3-SETs blocks after 2.01 s: the margin between the two
    // is exactly the paper's 0.01 s guardband, at any timeScale.
    for (const double scale : {1.0, 50.0, 250.0}) {
        const RetentionTracker t(scale, 3.0, 0.0);
        monitor::RrmConfig rrm;
        rrm.timeScale = scale;
        EXPECT_EQ(t.retentionTicks(pcm::WriteMode::Sets3) -
                      rrm.shortRetentionInterval(),
                  secondsToTicks(rrm.guardSeconds / scale))
            << "timeScale " << scale;
    }
}

TEST_F(FaultTest, SlackIsAddedUnscaled)
{
    const RetentionTracker t(100.0, 3.0, 0.005);
    EXPECT_EQ(t.retentionTicks(pcm::WriteMode::Sets3),
              secondsToTicks(2.01 / 100.0) + secondsToTicks(0.005));
}

TEST_F(FaultTest, SweepExpiresStrictlyPastDeadlinesOnly)
{
    RetentionTracker t(1.0, 3.0, 0.0);
    const Tick r = t.retentionTicks(pcm::WriteMode::Sets3);
    std::vector<Addr> expired;
    t.setViolationCallback(
        [&](Addr block, Tick, Tick) { expired.push_back(block); });

    t.recordWrite(0x40, pcm::WriteMode::Sets3, 1000);
    EXPECT_EQ(t.trackedCount(), 1u);
    // Deadline met exactly at `now` is satisfied...
    EXPECT_EQ(t.sweep(1000 + r), 0u);
    EXPECT_TRUE(expired.empty());
    // ...one tick later it is violated.
    EXPECT_EQ(t.sweep(1000 + r + 1), 1u);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0], 0x40u);
    EXPECT_EQ(t.trackedCount(), 0u);
    EXPECT_EQ(t.violations(), 1u);
}

TEST_F(FaultTest, RefreshReStampsTheDeadline)
{
    RetentionTracker t(1.0, 3.0, 0.0);
    const Tick r = t.retentionTicks(pcm::WriteMode::Sets3);
    t.recordWrite(0x40, pcm::WriteMode::Sets3, 0);
    t.recordRefresh(0x40, pcm::WriteMode::Sets3, r - 10);
    EXPECT_EQ(t.sweep(r + 1), 0u);
    EXPECT_EQ(t.nextDeadline(), std::optional<Tick>(r - 10 + r));
}

TEST_F(FaultTest, LongRetentionRewriteClearsTheObligation)
{
    RetentionTracker t(1.0, 3.0, 0.0);
    t.recordWrite(0x40, pcm::WriteMode::Sets3, 0);
    EXPECT_EQ(t.trackedCount(), 1u);
    t.recordWrite(0x40, pcm::WriteMode::Sets7, 100);
    EXPECT_EQ(t.trackedCount(), 0u);
    EXPECT_EQ(t.sweep(maxTick - 1), 0u);
}

TEST_F(FaultTest, ClearDropsTheObligation)
{
    RetentionTracker t(1.0, 3.0, 0.0);
    t.recordWrite(0x40, pcm::WriteMode::Sets3, 0);
    t.clear(0x40);
    EXPECT_EQ(t.trackedCount(), 0u);
    EXPECT_EQ(t.sweep(maxTick - 1), 0u);
}

TEST_F(FaultTest, NextDeadlineSurvivesLazyHeapInvalidation)
{
    RetentionTracker t(1.0, 3.0, 0.0);
    const Tick r = t.retentionTicks(pcm::WriteMode::Sets3);
    t.recordWrite(0x40, pcm::WriteMode::Sets3, 0);
    t.recordWrite(0x80, pcm::WriteMode::Sets3, 50);
    // Re-stamp the earliest block: its stale heap top must be
    // discarded, surfacing 0x80's deadline.
    t.recordWrite(0x40, pcm::WriteMode::Sets3, 100);
    EXPECT_EQ(t.nextDeadline(), std::optional<Tick>(50 + r));
    EXPECT_NO_THROW(t.audit());
}

// ---- FaultInjector ----

TEST_F(FaultTest, SameSeedSameDrawSequence)
{
    FaultInjector a(0.25, 0.5, 42);
    FaultInjector b(0.25, 0.5, 42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.writeFails(), b.writeFails());
        EXPECT_EQ(a.developsStuckAt(), b.developsStuckAt());
    }
}

TEST_F(FaultTest, ZeroRateNeverDrawsFromTheStream)
{
    FaultInjector zero(0.0, 0.0, 7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(zero.writeFails());
        EXPECT_FALSE(zero.developsStuckAt());
    }
}

TEST_F(FaultTest, FaultClassesDrawFromIndependentStreams)
{
    // Consuming one class's stream must not shift the other's.
    FaultInjector a(0.25, 0.5, 42);
    FaultInjector b(0.25, 0.5, 42);
    std::vector<bool> a_writes, b_writes;
    for (int i = 0; i < 200; ++i) {
        a_writes.push_back(a.writeFails());
        a.developsStuckAt(); // interleaved stuck-at draws
    }
    for (int i = 0; i < 200; ++i)
        b_writes.push_back(b.writeFails()); // no stuck-at draws
    EXPECT_EQ(a_writes, b_writes);
}

// ---- EcpRepair / LineRetirement ----

TEST_F(FaultTest, EcpBudgetIsPerLineAndExhaustible)
{
    EcpRepair ecp(2);
    EXPECT_TRUE(ecp.repair(0x1000));
    EXPECT_TRUE(ecp.repair(0x1000));
    EXPECT_FALSE(ecp.repair(0x1000)); // budget spent
    EXPECT_TRUE(ecp.repair(0x2000));  // other lines unaffected
    EXPECT_EQ(ecp.used(0x1000), 2u);
    EXPECT_EQ(ecp.used(0x2000), 1u);
    EXPECT_EQ(ecp.used(0x3000), 0u);
    EXPECT_EQ(ecp.repairedLines(), 2u);
    EXPECT_NO_THROW(ecp.audit());
}

TEST_F(FaultTest, RetirementRemapsIntoTheSparePool)
{
    LineRetirement pool(1_MiB, 64, 4);
    const Addr spare_base = 1_MiB - 4 * 64;
    EXPECT_TRUE(pool.retire(0x40));
    EXPECT_TRUE(pool.isRetired(0x40));
    EXPECT_EQ(pool.remap(0x40), spare_base);
    EXPECT_EQ(pool.remap(0x80), 0x80u); // identity for live lines
    EXPECT_TRUE(pool.retire(0x80));
    EXPECT_EQ(pool.remap(0x80), spare_base + 64);
    EXPECT_EQ(pool.retiredCount(), 2u);
    EXPECT_NO_THROW(pool.audit());
}

TEST_F(FaultTest, RetirementFailsWhenSparesExhaust)
{
    LineRetirement pool(1_MiB, 64, 2);
    EXPECT_TRUE(pool.retire(0x40));
    EXPECT_TRUE(pool.retire(0x80));
    EXPECT_FALSE(pool.retire(0xc0));
    EXPECT_EQ(pool.remap(0xc0), 0xc0u);
}

TEST_F(FaultTest, DoubleRetireIsAContractViolation)
{
    LineRetirement pool(1_MiB, 64, 4);
    EXPECT_TRUE(pool.retire(0x40));
    EXPECT_THROW(pool.retire(0x40), check::CheckError);
}

// ---- FaultConfig validation ----

TEST_F(FaultTest, CollectErrorsCatchesBadKnobs)
{
    FaultConfig cfg;
    cfg.transientWriteFailureRate = 1.5;
    cfg.trackRetentionMaxSeconds = 0.0;
    cfg.retentionSlackSeconds = -1.0;
    cfg.fallbackHighWatermark = 4;
    cfg.fallbackLowWatermark = 8;
    std::vector<std::string> errors;
    cfg.collectErrors(errors, 64);
    EXPECT_GE(errors.size(), 4u);
}

TEST_F(FaultTest, DefaultConfigIsDisabledAndValid)
{
    const FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    std::vector<std::string> errors;
    cfg.collectErrors(errors, 64);
    EXPECT_TRUE(errors.empty());
}

TEST_F(FaultTest, SystemValidateSurfacesFaultErrors)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("lbm");
    cfg.fault.transientWriteFailureRate = 2.0;
    cfg.wallTimeoutSeconds = -1.0;
    const auto errors = cfg.validate();
    bool fault_error = false, timeout_error = false;
    for (const auto &e : errors) {
        fault_error |= e.find("fault") != std::string::npos;
        timeout_error |= e.find("timeout") != std::string::npos;
    }
    EXPECT_TRUE(fault_error);
    EXPECT_TRUE(timeout_error);
}

// ---- Channel refresh holds ----

TEST_F(FaultTest, HeldRefreshesResumeWhenTheHoldExpires)
{
    EventQueue queue;
    memctrl::MemoryParams params;
    memctrl::Controller ctrl(params, queue);
    std::optional<Tick> refresh_done;
    ctrl.setCompletionHook([&](const memctrl::Request &req, Tick t) {
        if (req.kind == memctrl::ReqKind::RrmRefresh)
            refresh_done = t;
    });

    const Tick hold_until = 500_ns;
    ctrl.channel(0).holdRefreshes(hold_until);
    EXPECT_EQ(ctrl.channel(0).refreshHoldUntil(), hold_until);
    ASSERT_TRUE(ctrl.enqueueRefresh(0, pcm::WriteMode::Sets3));

    queue.run(hold_until - 1);
    EXPECT_FALSE(refresh_done.has_value());
    queue.run();
    ASSERT_TRUE(refresh_done.has_value());
    EXPECT_GE(*refresh_done, hold_until);
}

TEST_F(FaultTest, HoldsExtendButNeverShorten)
{
    EventQueue queue;
    memctrl::MemoryParams params;
    memctrl::Controller ctrl(params, queue);
    ctrl.channel(0).holdRefreshes(500_ns);
    ctrl.channel(0).holdRefreshes(100_ns); // no-op
    EXPECT_EQ(ctrl.channel(0).refreshHoldUntil(), 500_ns);
    ctrl.channel(0).holdRefreshes(900_ns);
    EXPECT_EQ(ctrl.channel(0).refreshHoldUntil(), 900_ns);
}

// ---- RegionMonitor pressure fallback ----

monitor::RrmConfig
smallRrmConfig()
{
    monitor::RrmConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    cfg.hotThreshold = 4;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    return cfg;
}

TEST_F(FaultTest, PressureFallbackDemotesAndForcesSlowWrites)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(), queue);
    std::vector<monitor::RefreshRequest> refreshes;
    rrm.setRefreshCallback([&](const monitor::RefreshRequest &r) {
        refreshes.push_back(r);
    });

    for (int i = 0; i < 4; ++i)
        rrm.registerLlcWrite(0x1000, true);
    ASSERT_TRUE(rrm.isHot(0x1000));
    rrm.registerLlcWrite(0x1000, true); // sets the vector bit
    ASSERT_EQ(rrm.writeModeFor(0x1000), pcm::WriteMode::Sets3);

    rrm.setPressureFallback(true);
    EXPECT_TRUE(rrm.pressureFallback());
    // Entering demotes every hot entry: its fast blocks get slow
    // rewrites instead of relying on the congested refresh path.
    EXPECT_EQ(rrm.hotEntryCount(), 0u);
    ASSERT_FALSE(refreshes.empty());
    EXPECT_EQ(refreshes.back().mode, pcm::WriteMode::Sets7);
    // While active, every decision is slow and no bits accrue.
    EXPECT_EQ(rrm.writeModeFor(0x1000), pcm::WriteMode::Sets7);
    for (int i = 0; i < 8; ++i)
        rrm.registerLlcWrite(0x2000, true);
    EXPECT_EQ(rrm.shortRetentionBlockCount(), 0u);

    rrm.setPressureFallback(false);
    EXPECT_FALSE(rrm.pressureFallback());
    EXPECT_NO_THROW(rrm.audit());
}

TEST_F(FaultTest, ReHeatingAfterFallbackIsPossible)
{
    // demoteAllHot halves the dirty-write counter, so a demoted
    // region can still re-promote once the fallback clears.
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(), queue);
    for (int i = 0; i < 4; ++i)
        rrm.registerLlcWrite(0x1000, true);
    rrm.setPressureFallback(true);
    rrm.setPressureFallback(false);
    EXPECT_FALSE(rrm.isHot(0x1000));
    for (int i = 0; i < 4; ++i)
        rrm.registerLlcWrite(0x1000, true);
    EXPECT_TRUE(rrm.isHot(0x1000));
}

TEST_F(FaultTest, DemotionsUnderPressureAreCounted)
{
    EventQueue queue;
    monitor::RegionMonitor rrm(smallRrmConfig(), queue);
    rrm.setQueueSaturationProbe([] { return true; });
    stats::StatGroup root("root");
    rrm.regStats(root);

    for (int i = 0; i < 5; ++i)
        rrm.registerLlcWrite(0x1000, true);
    ASSERT_TRUE(rrm.isHot(0x1000));
    rrm.demoteAllHot();

    const auto *s = dynamic_cast<const stats::Scalar *>(
        root.find("rrm.demotionsUnderPressure"));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value(), 1.0);
}

// ---- System-level: violations, fault stats, determinism ----

sys::SystemConfig
faultSystemConfig(const sys::Scheme &scheme)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("lbm");
    cfg.scheme = scheme;
    cfg.timeScale = 250.0;
    cfg.windowSeconds = 0.012;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    cfg.fault.retentionTracking = true;
    return cfg;
}

TEST_F(FaultTest, RrmKeepsZeroViolationsWhereStatic3Accumulates)
{
    // Scaled 3-SETs retention at 250x is 8.04 ms against a 12 ms
    // window: blanket fast writes must expire, RRM-refreshed ones
    // must not.
    sys::System static3(faultSystemConfig(
        sys::Scheme::staticScheme(pcm::WriteMode::Sets3)));
    const sys::SimResults r3 = static3.run();
    ASSERT_TRUE(r3.fault.enabled);
    EXPECT_GT(r3.fault.retentionViolations, 0u);
    EXPECT_GT(r3.fault.retentionStamps, 0u);

    sys::System rrm(faultSystemConfig(sys::Scheme::rrmScheme()));
    const sys::SimResults rr = rrm.run();
    ASSERT_TRUE(rr.fault.enabled);
    EXPECT_EQ(rr.fault.retentionViolations, 0u);
    EXPECT_GT(rr.fault.retentionStamps, 0u);
}

TEST_F(FaultTest, DisabledFaultLayerStaysOutOfResults)
{
    sys::SystemConfig cfg = faultSystemConfig(
        sys::Scheme::staticScheme(pcm::WriteMode::Sets7));
    cfg.fault = FaultConfig{};
    cfg.windowSeconds = 0.004;
    sys::System system(cfg);
    const sys::SimResults r = system.run();
    EXPECT_FALSE(r.fault.enabled);
    EXPECT_EQ(system.faultManager(), nullptr);
    const std::string json = r.toJsonString();
    EXPECT_EQ(json.find("\"fault\""), std::string::npos);
}

TEST_F(FaultTest, TransientFaultsAreRetriedDeterministically)
{
    auto make = [] {
        sys::SystemConfig cfg = faultSystemConfig(
            sys::Scheme::staticScheme(pcm::WriteMode::Sets7));
        cfg.windowSeconds = 0.006;
        cfg.fault.retentionTracking = false;
        cfg.fault.transientWriteFailureRate = 1e-3;
        return cfg;
    };
    sys::System a(make());
    const sys::SimResults ra = a.run();
    ASSERT_TRUE(ra.fault.enabled);
    EXPECT_GT(ra.fault.transientWriteFaults, 0u);
    EXPECT_GE(ra.fault.writeRetries, ra.fault.transientWriteFaults -
                                         ra.fault.writesUnrecovered);

    sys::System b(make());
    const sys::SimResults rb = b.run();
    EXPECT_EQ(ra.fault.transientWriteFaults,
              rb.fault.transientWriteFaults);
    EXPECT_EQ(ra.fault.writeRetries, rb.fault.writeRetries);
    EXPECT_EQ(ra.fault.writesUnrecovered, rb.fault.writesUnrecovered);
}

TEST_F(FaultTest, StuckAtFaultsConsumeEcpThenRetire)
{
    sys::SystemConfig cfg = faultSystemConfig(
        sys::Scheme::staticScheme(pcm::WriteMode::Sets7));
    cfg.windowSeconds = 0.006;
    cfg.fault.retentionTracking = false;
    cfg.fault.stuckAtWearThreshold = 2;
    cfg.fault.stuckAtRate = 1.0;
    cfg.fault.repairBudgetPerLine = 1;
    sys::System system(cfg);
    const sys::SimResults r = system.run();
    EXPECT_GT(r.fault.stuckAtFaults, 0u);
    EXPECT_GT(r.fault.stuckAtRepaired, 0u);
    EXPECT_GT(r.fault.linesRetired, 0u);
    EXPECT_EQ(r.fault.stuckAtFaults,
              r.fault.stuckAtRepaired + r.fault.linesRetired +
                  r.fault.spareExhausted);
}

TEST_F(FaultTest, RefreshDropsAreCountedAndReattempted)
{
    // Flood the refresh path: every region hot, every refresh
    // timing-visible, against the default 64-entry refresh queues.
    sys::SystemConfig cfg = faultSystemConfig(sys::Scheme::rrmScheme());
    cfg.windowSeconds = 0.012;
    cfg.refreshTiming = sys::RefreshTimingMode::Detailed;
    cfg.rrm.hotThreshold = 1;
    cfg.rrm.dirtyWriteFilter = false;
    cfg.fault.fallback = false; // keep the pressure on
    sys::System system(cfg);
    const sys::SimResults r = system.run();
    EXPECT_GT(r.fault.refreshDropped, 0u);
}

TEST_F(FaultTest, InjectedStallsTriggerTheFallbackGovernor)
{
    sys::SystemConfig cfg = faultSystemConfig(sys::Scheme::rrmScheme());
    cfg.windowSeconds = 0.012;
    cfg.refreshTiming = sys::RefreshTimingMode::Detailed;
    cfg.rrm.hotThreshold = 1;
    cfg.rrm.dirtyWriteFilter = false;
    cfg.fault.refreshStallSeconds = 0.002;
    cfg.fault.refreshStallPeriodSeconds = 0.004;
    cfg.fault.fallbackHighWatermark = 16;
    cfg.fault.fallbackLowWatermark = 2;
    sys::System system(cfg);
    const sys::SimResults r = system.run();
    EXPECT_GT(r.fault.refreshStalls, 0u);
    EXPECT_GT(r.fault.fallbackEntries, 0u);
}

TEST_F(FaultTest, FaultStatsAreByteIdenticalAcrossWorkerCounts)
{
    ::setenv("SOURCE_DATE_EPOCH", "0", 1);
    const fs::path base =
        fs::temp_directory_path() / "rrm_test_fault_det";
    fs::remove_all(base);

    const auto planFor = [&](const std::string &sub) {
        fs::create_directories(base / sub);
        run::RunPlan plan;
        for (const char *w : {"lbm", "libquantum"}) {
            for (const sys::Scheme &s :
                 {sys::Scheme::staticScheme(pcm::WriteMode::Sets3),
                  sys::Scheme::rrmScheme()}) {
                sys::SystemConfig cfg = faultSystemConfig(s);
                cfg.workload = trace::workloadFromName(w);
                cfg.windowSeconds = 0.006;
                cfg.fault.transientWriteFailureRate = 1e-4;
                const std::string id = std::string(w) + "." + s.name();
                cfg.obs.runRecordFile =
                    (base / sub / (id + ".json")).string();
                plan.add(std::move(cfg), id);
            }
        }
        return plan;
    };
    const auto slurp = [](const fs::path &path) {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        return ss.str();
    };

    run::RunnerOptions serial;
    serial.jobs = 1;
    const run::RunReport a =
        run::Runner(serial).execute(planFor("serial"));
    run::RunnerOptions parallel;
    parallel.jobs = 4;
    const run::RunReport b =
        run::Runner(parallel).execute(planFor("parallel"));

    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].results.fault.retentionViolations,
                  b.runs[i].results.fault.retentionViolations)
            << a.runs[i].id;
        const std::string serial_record =
            slurp(base / "serial" / (a.runs[i].id + ".json"));
        EXPECT_FALSE(serial_record.empty()) << a.runs[i].id;
        EXPECT_EQ(serial_record,
                  slurp(base / "parallel" / (a.runs[i].id + ".json")))
            << a.runs[i].id;
    }
    fs::remove_all(base);
}

// ---- Runner timeouts and retries ----

sys::SystemConfig
tinyConfig(const char *workload)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName(workload);
    cfg.scheme = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.004;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    return cfg;
}

TEST_F(FaultTest, TimedOutRunIsRecordedWithoutStallingThePlan)
{
    run::RunPlan plan;
    sys::SystemConfig doomed = tinyConfig("lbm");
    doomed.wallTimeoutSeconds = 1e-9;
    plan.add(std::move(doomed), "doomed");
    plan.add(tinyConfig("libquantum"), "healthy");

    run::RunnerOptions opts;
    opts.jobs = 1;
    const run::RunReport report = run::Runner(opts).execute(plan);

    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_EQ(report.runs[0].status, run::RunStatus::TimedOut);
    EXPECT_EQ(report.runs[0].attempts, 1u);
    EXPECT_EQ(report.runs[1].status, run::RunStatus::Ok);
    EXPECT_EQ(report.timedOutCount(), 1u);
    EXPECT_NE(report.failureSummary().find("doomed timed-out"),
              std::string::npos)
        << report.failureSummary();
    EXPECT_NE(report.runs[0].error.find("timeout"), std::string::npos);
}

TEST_F(FaultTest, RunnerTimeoutAppliesWhereConfigSetsNone)
{
    run::RunPlan plan;
    plan.add(tinyConfig("lbm"), "run");
    run::RunnerOptions opts;
    opts.jobs = 1;
    opts.timeoutSeconds = 1e-9;
    const run::RunReport report = run::Runner(opts).execute(plan);
    EXPECT_EQ(report.runs[0].status, run::RunStatus::TimedOut);
}

TEST_F(FaultTest, RetriesRecoverAFlakyRun)
{
    run::RunPlan plan;
    auto attempts_seen = std::make_shared<std::atomic<int>>(0);
    run::RunSpec &spec = plan.add(tinyConfig("lbm"), "flaky");
    spec.postRun = [attempts_seen](const sys::System &,
                                   const sys::SimResults &) {
        if (attempts_seen->fetch_add(1) == 0)
            throw std::runtime_error("injected first-attempt failure");
    };

    run::RunnerOptions opts;
    opts.jobs = 1;
    opts.retries = 1;
    const run::RunReport report = run::Runner(opts).execute(plan);
    EXPECT_EQ(report.runs[0].status, run::RunStatus::Ok);
    EXPECT_EQ(report.runs[0].attempts, 2u);
    EXPECT_TRUE(report.runs[0].error.empty());
    EXPECT_TRUE(report.allOk());
}

TEST_F(FaultTest, RetriesExhaustToFailed)
{
    run::RunPlan plan;
    run::RunSpec &spec = plan.add(tinyConfig("lbm"), "broken");
    spec.postRun = [](const sys::System &, const sys::SimResults &) {
        throw std::runtime_error("always fails");
    };
    run::RunnerOptions opts;
    opts.jobs = 1;
    opts.retries = 2;
    const run::RunReport report = run::Runner(opts).execute(plan);
    EXPECT_EQ(report.runs[0].status, run::RunStatus::Failed);
    EXPECT_EQ(report.runs[0].attempts, 3u);
    EXPECT_EQ(report.runs[0].error, "always fails");
}

} // namespace
} // namespace rrm::fault
