/**
 * @file
 * Tests for the synthetic access patterns.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/pattern.hh"

namespace rrm::trace
{
namespace
{

TEST(StridePattern, ReadsAndWritesUseDisjointHalves)
{
    StridePattern p(1_MiB, 64, 0.5);
    Random rng(1);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    for (int i = 0; i < 10000; ++i) {
        p.next(rng, addr, type);
        ASSERT_LT(addr, 1_MiB);
        if (type == AccessType::Read)
            ASSERT_LT(addr, 512_KiB);
        else
            ASSERT_GE(addr, 512_KiB);
    }
}

TEST(StridePattern, StreamsAreSequential)
{
    StridePattern p(1_MiB, 64, 0.0); // reads only
    Random rng(2);
    Addr addr = 0, prev = 0;
    AccessType type = AccessType::Read;
    p.next(rng, prev, type);
    for (int i = 0; i < 100; ++i) {
        p.next(rng, addr, type);
        ASSERT_EQ(addr, prev + 64);
        prev = addr;
    }
}

TEST(StridePattern, CursorWrapsAroundFootprint)
{
    StridePattern p(1024, 64, 0.0); // 8 read slots of 64 B
    Random rng(3);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    std::set<Addr> seen;
    for (int i = 0; i < 64; ++i) {
        p.next(rng, addr, type);
        seen.insert(addr);
    }
    // Half the footprint, one slot per stride.
    EXPECT_EQ(seen.size(), 8u);
}

TEST(StridePattern, WriteFractionIsRespected)
{
    StridePattern p(1_MiB, 64, 0.3);
    Random rng(4);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        p.next(rng, addr, type);
        writes += type == AccessType::Write;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(StridePattern, RejectsDegenerateConfig)
{
    EXPECT_THROW(StridePattern(64, 0, 0.5), PanicError);
    EXPECT_THROW(StridePattern(64, 64, 0.5), PanicError);
    EXPECT_THROW(StridePattern(1_MiB, 64, 1.5), PanicError);
}

TEST(ZipfRegionPattern, AddressesStayInFootprint)
{
    ZipfRegionPattern p(64, 4096, 0.8, 0.5, 8);
    Random rng(5);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    for (int i = 0; i < 20000; ++i) {
        p.next(rng, addr, type);
        ASSERT_LT(addr, p.footprintBytes());
        ASSERT_EQ(addr % 64, 0u);
    }
}

TEST(ZipfRegionPattern, BurstIsSequentialWithinRegion)
{
    ZipfRegionPattern p(64, 4096, 0.8, 0.0, 8);
    Random rng(6);
    Addr addr = 0, prev = 0;
    AccessType type = AccessType::Read;
    p.next(rng, prev, type);
    int sequential = 0, total = 0;
    for (int i = 0; i < 1000; ++i) {
        p.next(rng, addr, type);
        sequential += addr == prev + 64;
        ++total;
        prev = addr;
    }
    // Bursts average ~4.5 blocks, so ~3.5/4.5 of steps are +64.
    EXPECT_GT(sequential, total / 2);
}

TEST(ZipfRegionPattern, WholeRegionSweepCoversEveryBlock)
{
    ZipfRegionPattern p(4, 4096, 0.5, 0.0, 64);
    Random rng(7);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    // First burst: 64 sequential blocks of one region from offset 0.
    p.next(rng, addr, type);
    const Addr region_base = addr;
    EXPECT_EQ(region_base % 4096, 0u);
    for (int i = 1; i < 64; ++i) {
        p.next(rng, addr, type);
        ASSERT_EQ(addr, region_base + static_cast<Addr>(i) * 64);
    }
}

TEST(ZipfRegionPattern, BurstHasUniformAccessType)
{
    ZipfRegionPattern p(4, 4096, 0.5, 0.5, 64);
    Random rng(8);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    for (int burst = 0; burst < 50; ++burst) {
        p.next(rng, addr, type);
        const AccessType first = type;
        for (int i = 1; i < 64; ++i) {
            p.next(rng, addr, type);
            ASSERT_EQ(type, first) << "burst " << burst;
        }
    }
}

TEST(ZipfRegionPattern, PopularRegionsDominante)
{
    ZipfRegionPattern p(256, 4096, 1.0, 0.5, 8);
    Random rng(9);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    std::vector<int> region_counts(256, 0);
    for (int i = 0; i < 100000; ++i) {
        p.next(rng, addr, type);
        ++region_counts[addr / 4096];
    }
    int head = 0, tail = 0;
    for (int r = 0; r < 16; ++r)
        head += region_counts[r];
    for (int r = 240; r < 256; ++r)
        tail += region_counts[r];
    EXPECT_GT(head, 4 * tail);
}

TEST(ZipfRegionPattern, RejectsBadConfig)
{
    EXPECT_THROW(ZipfRegionPattern(0, 4096, 0.8, 0.5), PanicError);
    EXPECT_THROW(ZipfRegionPattern(4, 100, 0.8, 0.5), PanicError);
    EXPECT_THROW(ZipfRegionPattern(4, 4096, 0.8, 0.5, 0), PanicError);
    EXPECT_THROW(ZipfRegionPattern(4, 4096, 0.8, 2.0), PanicError);
}

TEST(ChasePattern, UniformBlockAlignedAddresses)
{
    ChasePattern p(1_MiB, 0.1);
    Random rng(10);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    std::set<Addr> seen;
    for (int i = 0; i < 20000; ++i) {
        p.next(rng, addr, type);
        ASSERT_LT(addr, 1_MiB);
        ASSERT_EQ(addr % 64, 0u);
        seen.insert(addr);
    }
    // 16384 blocks; 20000 uniform draws should cover most of them.
    EXPECT_GT(seen.size(), 10000u);
}

TEST(ChasePattern, WriteFraction)
{
    ChasePattern p(1_MiB, 0.15);
    Random rng(11);
    Addr addr = 0;
    AccessType type = AccessType::Read;
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        p.next(rng, addr, type);
        writes += type == AccessType::Write;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.15, 0.01);
}

TEST(ChasePattern, RejectsBadConfig)
{
    EXPECT_THROW(ChasePattern(32, 0.1), PanicError);
    EXPECT_THROW(ChasePattern(1_MiB, -0.1), PanicError);
}

} // namespace
} // namespace rrm::trace
