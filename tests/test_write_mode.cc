/**
 * @file
 * Tests for the MLC PCM write-mode table (paper Table I).
 */

#include <gtest/gtest.h>

#include "pcm/write_mode.hh"

namespace rrm::pcm
{
namespace
{

TEST(WriteMode, SetIterationsRange)
{
    EXPECT_EQ(setIterations(WriteMode::Sets3), 3u);
    EXPECT_EQ(setIterations(WriteMode::Sets4), 4u);
    EXPECT_EQ(setIterations(WriteMode::Sets5), 5u);
    EXPECT_EQ(setIterations(WriteMode::Sets6), 6u);
    EXPECT_EQ(setIterations(WriteMode::Sets7), 7u);
}

TEST(WriteMode, ModeForSetIterationsRoundTrips)
{
    for (WriteMode m : allWriteModes)
        EXPECT_EQ(modeForSetIterations(setIterations(m)), m);
}

TEST(WriteMode, ModeForInvalidIterationsPanics)
{
    EXPECT_THROW(modeForSetIterations(2), PanicError);
    EXPECT_THROW(modeForSetIterations(8), PanicError);
}

TEST(WriteMode, LatencyMatchesPulseTrain)
{
    for (WriteMode m : allWriteModes) {
        EXPECT_EQ(writeLatency(m),
                  resetPulse + setIterations(m) * setPulse)
            << writeModeName(m);
    }
}

TEST(WriteMode, Table1LatencyValues)
{
    EXPECT_EQ(writeLatency(WriteMode::Sets3), 550_ns);
    EXPECT_EQ(writeLatency(WriteMode::Sets4), 700_ns);
    EXPECT_EQ(writeLatency(WriteMode::Sets5), 850_ns);
    EXPECT_EQ(writeLatency(WriteMode::Sets6), 1000_ns);
    EXPECT_EQ(writeLatency(WriteMode::Sets7), 1150_ns);
}

TEST(WriteMode, Table1RetentionValues)
{
    EXPECT_DOUBLE_EQ(retentionSeconds(WriteMode::Sets3), 2.01);
    EXPECT_DOUBLE_EQ(retentionSeconds(WriteMode::Sets4), 24.05);
    EXPECT_DOUBLE_EQ(retentionSeconds(WriteMode::Sets5), 104.4);
    EXPECT_DOUBLE_EQ(retentionSeconds(WriteMode::Sets6), 991.4);
    EXPECT_DOUBLE_EQ(retentionSeconds(WriteMode::Sets7), 3054.9);
}

TEST(WriteMode, Table1CurrentsDecreaseWithIterations)
{
    // More SET iterations allow a gentler (smaller) SET current.
    double prev = 1e9;
    for (WriteMode m : allWriteModes) {
        const double cur = writeModeParams(m).setCurrentUa;
        EXPECT_LT(cur, prev) << writeModeName(m);
        prev = cur;
    }
}

TEST(WriteMode, RetentionAndLatencyBothIncreaseWithIterations)
{
    for (std::size_t i = 1; i < allWriteModes.size(); ++i) {
        EXPECT_GT(retentionSeconds(allWriteModes[i]),
                  retentionSeconds(allWriteModes[i - 1]));
        EXPECT_GT(writeLatency(allWriteModes[i]),
                  writeLatency(allWriteModes[i - 1]));
    }
}

TEST(WriteMode, NormalizedEnergyPeaksAtSevenSets)
{
    EXPECT_DOUBLE_EQ(
        writeModeParams(WriteMode::Sets7).normalizedEnergy, 1.0);
    for (WriteMode m : allWriteModes) {
        EXPECT_LE(writeModeParams(m).normalizedEnergy, 1.0);
        EXPECT_GT(writeModeParams(m).normalizedEnergy, 0.5);
    }
}

TEST(WriteMode, Names)
{
    EXPECT_EQ(writeModeName(WriteMode::Sets3), "3-SETs");
    EXPECT_EQ(writeModeName(WriteMode::Sets7), "7-SETs");
}

} // namespace
} // namespace rrm::pcm
