/**
 * @file
 * Tests for the analytic resistance-drift / retention model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pcm/drift_model.hh"

namespace rrm::pcm
{
namespace
{

TEST(DriftModel, DefaultParamsValidate)
{
    EXPECT_NO_THROW(DriftModel{});
}

TEST(DriftModel, GuardbandGrowsWithIterations)
{
    DriftModel model;
    for (unsigned n = 4; n <= 7; ++n)
        EXPECT_GT(model.guardband(n), model.guardband(n - 1));
}

TEST(DriftModel, BandWidthShrinksWithIterations)
{
    DriftModel model;
    for (unsigned n = 4; n <= 7; ++n)
        EXPECT_LT(model.bandWidth(n), model.bandWidth(n - 1));
}

TEST(DriftModel, RetentionMonotoneInIterations)
{
    DriftModel model;
    for (unsigned n = 4; n <= 7; ++n) {
        EXPECT_GT(model.retentionSeconds(n),
                  model.retentionSeconds(n - 1));
    }
}

TEST(DriftModel, DriftIsZeroAtOrBeforeT0)
{
    DriftModel model;
    EXPECT_DOUBLE_EQ(model.driftDecades(0.0, 0.1), 0.0);
    EXPECT_DOUBLE_EQ(model.driftDecades(-1.0, 0.1), 0.0);
    EXPECT_NEAR(model.driftDecades(1.0, 0.1), 0.0, 1e-12);
}

TEST(DriftModel, DriftFollowsPowerLaw)
{
    DriftModel model;
    const double alpha = 0.1;
    // One decade of time adds alpha decades of resistance.
    EXPECT_NEAR(model.driftDecades(10.0, alpha), alpha, 1e-12);
    EXPECT_NEAR(model.driftDecades(100.0, alpha), 2 * alpha, 1e-12);
}

TEST(DriftModel, TimeToDriftInvertsDrift)
{
    DriftModel model;
    const double alpha = model.params().alpha;
    for (double decades : {0.05, 0.1, 0.3}) {
        const double t = model.timeToDriftSeconds(decades);
        EXPECT_NEAR(model.driftDecades(t, alpha), decades, 1e-9);
    }
}

TEST(DriftModel, RetentionEqualsTimeToCrossGuardband)
{
    DriftModel model;
    for (unsigned n = 3; n <= 7; ++n) {
        EXPECT_NEAR(model.retentionSeconds(n),
                    model.timeToDriftSeconds(model.guardband(n)),
                    model.retentionSeconds(n) * 1e-9);
    }
}

/**
 * The fitted defaults should land within ~60% of each Table I
 * retention value (the paper's table comes from a multi-factor model
 * this analytic fit approximates — see drift_model.hh).
 */
TEST(DriftModel, ApproximatesTable1Retention)
{
    DriftModel model;
    for (WriteMode m : allWriteModes) {
        const double table = retentionSeconds(m);
        const double analytic = model.retentionSeconds(m);
        const double ratio = analytic / table;
        EXPECT_GT(ratio, 1.0 / 1.6) << writeModeName(m);
        EXPECT_LT(ratio, 1.6) << writeModeName(m);
    }
}

TEST(DriftModel, FasterDriftShortensRetention)
{
    DriftParams fast;
    fast.alpha = 0.12;
    DriftParams slow;
    slow.alpha = 0.08;
    EXPECT_LT(DriftModel(fast).retentionSeconds(5u),
              DriftModel(slow).retentionSeconds(5u));
}

TEST(DriftModel, LargerSeparationLengthensRetention)
{
    DriftParams wide;
    wide.levelSeparation = 0.6;
    DriftParams narrow;
    narrow.levelSeparation = 0.5;
    EXPECT_GT(DriftModel(wide).retentionSeconds(5u),
              DriftModel(narrow).retentionSeconds(5u));
}

TEST(DriftModel, SampledRetentionVariesAndStaysPositive)
{
    DriftModel model;
    Random rng(99);
    double min_v = 1e300, max_v = 0;
    for (int i = 0; i < 2000; ++i) {
        const double r = model.sampleRetentionSeconds(7, rng);
        EXPECT_GT(r, 0.0);
        min_v = std::min(min_v, r);
        max_v = std::max(max_v, r);
    }
    // Process variation must actually spread the distribution.
    EXPECT_GT(max_v / min_v, 1.5);
}

TEST(DriftModel, SampledRetentionCentersOnNominal)
{
    DriftModel model;
    Random rng(100);
    double log_sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        log_sum += std::log(model.sampleRetentionSeconds(5, rng));
    const double geo = std::exp(log_sum / n);
    const double nominal = model.retentionSeconds(5u);
    EXPECT_GT(geo / nominal, 0.5);
    EXPECT_LT(geo / nominal, 2.0);
}

TEST(DriftModel, InvalidParamsPanic)
{
    DriftParams p;
    p.alpha = 0.0;
    EXPECT_THROW(DriftModel{p}, PanicError);

    DriftParams q;
    q.levelSeparation = -1.0;
    EXPECT_THROW(DriftModel{q}, PanicError);

    DriftParams r;
    r.bandWidth0 = 0.1; // 7-SET band width would go negative
    EXPECT_THROW(DriftModel{r}, PanicError);

    DriftParams s;
    s.bandWidthStep = 0.0; // no precision gain -> 3-SET guardband <= 0
    s.bandWidth0 = 0.6;
    s.levelSeparation = 0.5;
    EXPECT_THROW(DriftModel{s}, PanicError);
}

} // namespace
} // namespace rrm::pcm
