/**
 * @file
 * Tests for wear tracking and lifetime estimation.
 */

#include <gtest/gtest.h>

#include "pcm/lifetime_model.hh"
#include "pcm/wear_tracker.hh"

namespace rrm::pcm
{
namespace
{

WearTracker
smallTracker()
{
    // 1 MB memory, 4 KB regions, 64 B blocks -> 256 regions.
    return WearTracker(1_MiB, 4_KiB, 64);
}

TEST(WearTracker, GeometryChecks)
{
    WearTracker t = smallTracker();
    EXPECT_EQ(t.numRegions(), 256u);
    EXPECT_EQ(t.numBlocks(), 1_MiB / 64);
}

TEST(WearTracker, RecordsPerCauseTotals)
{
    WearTracker t = smallTracker();
    t.recordBlockWrite(0, WearCause::DemandWrite);
    t.recordBlockWrite(64, WearCause::DemandWrite);
    t.recordBlockWrite(128, WearCause::RrmRefresh);
    t.recordGlobalRefresh(1000);
    EXPECT_EQ(t.total(WearCause::DemandWrite), 2u);
    EXPECT_EQ(t.total(WearCause::RrmRefresh), 1u);
    EXPECT_EQ(t.total(WearCause::GlobalRefresh), 1000u);
    EXPECT_EQ(t.grandTotal(), 1003u);
}

TEST(WearTracker, RegionAttribution)
{
    WearTracker t = smallTracker();
    // Three writes in region 0, one in region 5.
    t.recordBlockWrite(0, WearCause::DemandWrite);
    t.recordBlockWrite(64, WearCause::DemandWrite);
    t.recordBlockWrite(4095, WearCause::RrmRefresh);
    t.recordBlockWrite(5 * 4096, WearCause::DemandWrite);
    EXPECT_EQ(t.regionWear(0), 3u);
    EXPECT_EQ(t.regionWear(5), 1u);
    EXPECT_EQ(t.regionWear(1), 0u);
    EXPECT_EQ(t.touchedRegions(), 2u);
    EXPECT_EQ(t.maxRegionWear(), 3u);
}

TEST(WearTracker, RegionWearStatsSkipUntouched)
{
    WearTracker t = smallTracker();
    t.recordBlockWrite(0, WearCause::DemandWrite);
    t.recordBlockWrite(0, WearCause::DemandWrite);
    t.recordBlockWrite(4096, WearCause::DemandWrite);
    const SampleStats s = t.regionWearStats();
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(WearTracker, GlobalRefreshViaBlockWritePanics)
{
    WearTracker t = smallTracker();
    EXPECT_THROW(t.recordBlockWrite(0, WearCause::GlobalRefresh),
                 PanicError);
}

TEST(WearTracker, OutOfRangeAddressPanics)
{
    WearTracker t = smallTracker();
    EXPECT_THROW(t.recordBlockWrite(1_MiB, WearCause::DemandWrite),
                 PanicError);
}

TEST(WearTracker, ResetClearsEverything)
{
    WearTracker t = smallTracker();
    t.recordBlockWrite(0, WearCause::DemandWrite);
    t.recordGlobalRefresh(5);
    t.reset();
    EXPECT_EQ(t.grandTotal(), 0u);
    EXPECT_EQ(t.touchedRegions(), 0u);
}

TEST(WearTracker, CauseNames)
{
    EXPECT_EQ(wearCauseName(WearCause::DemandWrite), "demand_write");
    EXPECT_EQ(wearCauseName(WearCause::RrmRefresh), "rrm_refresh");
    EXPECT_EQ(wearCauseName(WearCause::GlobalRefresh),
              "global_refresh");
}

// ---- Lifetime ----

constexpr std::uint64_t blocks8GiB = 8_GiB / 64;

TEST(LifetimeModel, DemandRateIsCountOverWindow)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement wm;
    wm.demandWrites = 1000000;
    wm.windowSeconds = 0.1;
    wm.timeScale = 50.0;
    EXPECT_DOUBLE_EQ(m.demandWriteRate(wm), 1e7);
}

TEST(LifetimeModel, RrmRefreshRateIsSpreadOverScaledTime)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement wm;
    wm.rrmRefreshWrites = 100000;
    wm.windowSeconds = 0.1;
    wm.timeScale = 50.0;
    // 1e5 refreshes over 0.1 s x 50 = 5 s of real time.
    EXPECT_DOUBLE_EQ(m.rrmRefreshRate(wm), 20000.0);
}

TEST(LifetimeModel, GlobalRefreshRateFollowsRetention)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement wm;
    wm.windowSeconds = 1.0;
    wm.globalRefreshMode = WriteMode::Sets3;
    EXPECT_NEAR(m.globalRefreshRate(wm),
                static_cast<double>(blocks8GiB) / 2.01, 1.0);
    wm.globalRefreshMode = std::nullopt;
    EXPECT_DOUBLE_EQ(m.globalRefreshRate(wm), 0.0);
}

/**
 * Paper cross-check: a Static-3-SETs system's lifetime is dominated by
 * whole-array refresh every 2.01 s; with 5e6 endurance and 95%
 * leveling that bounds lifetime at 0.95 * 5e6 * 2.01 s = ~0.30 years,
 * matching the ~0.3 years the paper reports.
 */
TEST(LifetimeModel, Static3RefreshBoundMatchesPaper)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement wm;
    wm.windowSeconds = 1.0;
    wm.demandWrites = 0;
    wm.globalRefreshMode = WriteMode::Sets3;
    const double years = m.lifetimeYears(wm);
    EXPECT_NEAR(years, 0.95 * 5e6 * 2.01 / secondsPerYear, 1e-6);
    EXPECT_GT(years, 0.28);
    EXPECT_LT(years, 0.33);
}

TEST(LifetimeModel, LifetimeInverseInWriteRate)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement a;
    a.demandWrites = 1000000;
    a.windowSeconds = 0.1;
    a.globalRefreshMode = std::nullopt;
    WearMeasurement b = a;
    b.demandWrites = 2000000;
    EXPECT_NEAR(m.lifetimeSeconds(a) / m.lifetimeSeconds(b), 2.0,
                1e-9);
}

TEST(LifetimeModel, MoreRefreshShortensLifetime)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement base;
    base.demandWrites = 1000000;
    base.windowSeconds = 0.1;
    base.timeScale = 50.0;
    base.globalRefreshMode = WriteMode::Sets7;
    WearMeasurement more = base;
    more.rrmRefreshWrites = 500000;
    EXPECT_LT(m.lifetimeYears(more), m.lifetimeYears(base));
}

TEST(LifetimeModel, EmptyWindowPanics)
{
    LifetimeModel m(blocks8GiB);
    WearMeasurement wm;
    EXPECT_THROW(m.lifetimeYears(wm), PanicError);
}

TEST(LifetimeModel, InvalidParamsPanic)
{
    EXPECT_THROW(LifetimeModel(0), PanicError);
    LifetimeParams p;
    p.levelingEfficiency = 0.0;
    EXPECT_THROW(LifetimeModel(10, p), PanicError);
    p.levelingEfficiency = 1.5;
    EXPECT_THROW(LifetimeModel(10, p), PanicError);
}

} // namespace
} // namespace rrm::pcm
