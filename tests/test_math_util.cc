/**
 * @file
 * Tests for the numeric helpers.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/math_util.hh"

namespace rrm
{
namespace
{

TEST(MathUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(MathUtil, FloorLog2ExactPowers)
{
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(floorLog2(1ULL << i), i);
}

TEST(MathUtil, FloorLog2RoundsDown)
{
    EXPECT_EQ(floorLog2(5), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
}

TEST(MathUtil, FloorLog2ZeroPanics)
{
    EXPECT_THROW(floorLog2(0), PanicError);
}

TEST(MathUtil, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 2u);
    EXPECT_EQ(bitsFor(15), 4u);
    EXPECT_EQ(bitsFor(16), 5u);
    EXPECT_EQ(bitsFor(64), 7u);
}

TEST(MathUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(100, 7), 15u);
}

TEST(MathUtil, GeomeanOfEqualValuesIsThatValue)
{
    const std::array<double, 3> v = {4.0, 4.0, 4.0};
    EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(MathUtil, GeomeanKnownValue)
{
    const std::array<double, 2> v = {2.0, 8.0};
    EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(MathUtil, GeomeanBelowArithmeticMean)
{
    const std::array<double, 3> v = {1.0, 10.0, 100.0};
    EXPECT_LT(geomean(v), 37.0);
    EXPECT_NEAR(geomean(v), 10.0, 1e-9);
}

TEST(MathUtil, GeomeanRejectsEmptyAndNonPositive)
{
    EXPECT_THROW(geomean({}), PanicError);
    const std::array<double, 2> with_zero = {1.0, 0.0};
    EXPECT_THROW(geomean(with_zero), PanicError);
    const std::array<double, 2> negative = {1.0, -2.0};
    EXPECT_THROW(geomean(negative), PanicError);
}

} // namespace
} // namespace rrm
