/**
 * @file
 * WritePath tests: the writeback buffer and refresh overflow queue
 * extracted from the System. Uses a deliberately tiny controller
 * (one channel, two-entry queues) so the full/overflow paths are easy
 * to hit, with the same hook wiring the System uses.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "memctrl/controller.hh"
#include "system/write_path.hh"

namespace rrm::sys
{
namespace
{

struct Fixture
{
    EventQueue queue;
    memctrl::MemoryParams params;
    std::unique_ptr<memctrl::Controller> controller;
    std::unique_ptr<WritePath> wp;
    std::vector<Addr> dropped;

    explicit Fixture(unsigned writeback_cap = 2)
    {
        params.numChannels = 1;
        params.readQueueCap = 4;
        params.writeQueueCap = 2;
        params.refreshQueueCap = 2;
        params.writeHighWatermark = 2;
        params.writeLowWatermark = 1;
        controller =
            std::make_unique<memctrl::Controller>(params, queue);
        wp = std::make_unique<WritePath>(*controller, queue,
                                         writeback_cap,
                                         params.busCycle);
        // The System's wiring: freed write slots and finished
        // refreshes pull from the staging queues.
        controller->setWriteIssuedHook([this] {
            wp->drainWritebacks();
        });
        controller->setCompletionHook(
            [this](const memctrl::Request &req, Tick) {
                if (req.kind == memctrl::ReqKind::RrmRefresh)
                    wp->drainRefreshOverflow();
            });
        wp->setRefreshDroppedCallback([this](Addr a) {
            dropped.push_back(a);
        });
    }

    /** Run the event loop until the controller has fully drained. */
    void
    settle()
    {
        const Tick step = 1000 * params.busCycle;
        for (int i = 0; i < 10000 && !controller->idle(); ++i)
            queue.run(queue.now() + step);
        ASSERT_TRUE(controller->idle());
    }
};

/** Enqueue writes until the controller refuses; return the next addr. */
Addr
fillWriteQueue(Fixture &f)
{
    Addr addr = 0;
    while (f.controller->enqueueWrite(addr, pcm::WriteMode::Sets7))
        addr += 64;
    return addr;
}

/** Enqueue refreshes until the controller refuses; return next addr. */
Addr
fillRefreshQueue(Fixture &f)
{
    Addr addr = 0;
    while (f.controller->enqueueRefresh(addr, pcm::WriteMode::Sets7))
        addr += 64;
    return addr;
}

TEST(WritePath, WritebackFlowsStraightThrough)
{
    Fixture f;
    f.wp->queueWriteback(0, pcm::WriteMode::Sets7);
    // The controller accepted it (possibly issuing it immediately):
    // nothing is left staged and the channel has work.
    EXPECT_EQ(f.wp->writebackDepth(), 0u);
    EXPECT_FALSE(f.wp->writebackFull());
    EXPECT_FALSE(f.controller->idle());
    f.wp->audit();
}

TEST(WritePath, WritebacksBufferWhenControllerIsFull)
{
    Fixture f(/*writeback_cap=*/2);
    // Saturate the single channel's two-entry write queue (requests
    // issue as soon as a bank frees, so fill until refused).
    Addr addr = fillWriteQueue(f);

    f.wp->queueWriteback(addr, pcm::WriteMode::Sets7);
    EXPECT_EQ(f.wp->writebackDepth(), 1u);
    EXPECT_FALSE(f.wp->writebackFull());
    f.wp->queueWriteback(addr + 64, pcm::WriteMode::Sets7);
    EXPECT_EQ(f.wp->writebackDepth(), 2u);
    EXPECT_TRUE(f.wp->writebackFull());
    f.wp->audit();

    // Issued writes free slots; the write-issued hook drains the
    // buffer without any further involvement from the test.
    f.settle();
    EXPECT_EQ(f.wp->writebackDepth(), 0u);
    EXPECT_FALSE(f.wp->writebackFull());
    f.wp->audit();
}

TEST(WritePath, RefreshGoesStraightToTheController)
{
    Fixture f;
    f.wp->submitRefresh(0, pcm::WriteMode::Sets7);
    EXPECT_FALSE(f.wp->refreshOverflowPending());
    EXPECT_TRUE(f.dropped.empty());
    EXPECT_FALSE(f.controller->idle());
}

TEST(WritePath, RefreshOverflowDefersAndRetriesUntilDelivered)
{
    Fixture f;
    // Fill the two-entry refresh queue, then overflow twice.
    const Addr addr = fillRefreshQueue(f);
    f.wp->submitRefresh(addr, pcm::WriteMode::Sets7);
    f.wp->submitRefresh(addr + 64, pcm::WriteMode::Sets7);

    EXPECT_TRUE(f.wp->refreshOverflowPending());
    ASSERT_EQ(f.dropped.size(), 2u);
    EXPECT_EQ(f.dropped[0], addr);
    EXPECT_EQ(f.dropped[1], addr + 64);
    f.wp->audit(); // overflow pending => retry must be armed

    // The retry timer / completion hook must deliver every deferred
    // refresh: the obligation is deferred, never dropped.
    f.settle();
    EXPECT_FALSE(f.wp->refreshOverflowPending());
    f.wp->audit();
}

TEST(WritePath, StatsCountBlockedWritebacksAndOverflows)
{
    Fixture f(/*writeback_cap=*/1);
    stats::StatGroup g("sys");
    f.wp->regStats(g);
    const auto *blocked =
        dynamic_cast<const stats::Scalar *>(g.find("writebackBlocked"));
    const auto *overflows =
        dynamic_cast<const stats::Scalar *>(g.find("refreshOverflows"));
    ASSERT_NE(blocked, nullptr);
    ASSERT_NE(overflows, nullptr);

    Addr waddr = fillWriteQueue(f);
    f.wp->queueWriteback(waddr, pcm::WriteMode::Sets7); // hits cap 1
    EXPECT_EQ(blocked->value(), 1.0);

    Addr raddr = fillRefreshQueue(f);
    f.wp->submitRefresh(raddr, pcm::WriteMode::Sets7);
    EXPECT_EQ(overflows->value(), 1.0);

    f.settle();
}

} // namespace
} // namespace rrm::sys
