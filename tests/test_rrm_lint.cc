/**
 * @file
 * rrm-lint analyzer tests.
 *
 * Two layers of coverage:
 *  - the fixture tree (tools/rrm-lint/fixtures) seeds one violation
 *    per rule, plus suppression-mechanics cases; the tests assert the
 *    exact (file, line, rule) tuples so a rule regression or a line
 *    drift in a fixture fails loudly;
 *  - the repository itself must lint clean: zero unsuppressed
 *    violations (the PR-gating acceptance criterion, enforced here as
 *    a plain ctest in addition to the CI lint job).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint.hh"

namespace
{

using rrm::lint::Diagnostic;
using Key = std::tuple<std::string, int, std::string>;

std::vector<Diagnostic>
lintFixtures()
{
    rrm::lint::Config config = rrm::lint::defaultConfig();
    rrm::lint::loadTraceCategories(RRM_LINT_FIXTURES, config);
    return rrm::lint::lintTree(RRM_LINT_FIXTURES, config);
}

std::set<Key>
keys(const std::vector<Diagnostic> &diags, bool suppressed)
{
    std::set<Key> out;
    for (const Diagnostic &d : diags)
        if (d.suppressed == suppressed)
            out.insert({d.file, d.line, d.rule});
    return out;
}

} // namespace

TEST(RrmLint, FixtureTreeReportsExactRuleIdsAndLines)
{
    const auto diags = lintFixtures();
    const std::set<Key> expected{
        {"src/common/units_mix.cc", 8, "units-raw-mix"},
        {"src/common/units_mix.cc", 9, "units-raw-mix"},
        {"src/cpu/scheme_branch.cc", 3, "layer-upward-include"},
        {"src/cpu/scheme_branch.cc", 8, "layer-scheme-dispatch"},
        {"src/obs/det_seams.cc", 11, "det-wall-clock"},
        {"src/obs/det_seams.cc", 17, "det-random"},
        {"src/obs/det_seams.cc", 22, "det-pointer-key"},
        {"src/pcm/suppressed_bad.cc", 13, "lint-missing-reason"},
        {"src/pcm/suppressed_bad.cc", 14, "det-unordered-iter"},
        {"src/pcm/suppressed_bad.cc", 16, "lint-unknown-rule"},
        {"src/rrm/stats_hygiene.cc", 9, "stats-register-once"},
        {"src/rrm/stats_hygiene.cc", 10, "stats-register-once"},
        {"src/rrm/stats_hygiene.cc", 14, "stats-formula-operand"},
        {"src/rrm/stats_hygiene.cc", 16, "stats-trace-category"},
        {"src/rrm/stats_hygiene.hh", 14, "stats-register-once"},
        {"src/run/clock_seam.cc", 11, "det-monotonic-clock"},
        {"src/run/clock_seam.cc", 14, "det-monotonic-clock"},
        {"src/sim/det_unordered.cc", 14, "det-unordered-iter"},
        {"src/sim/det_unordered.cc", 22, "det-unordered-iter"},
        {"src/sim/hot_std_function.cc", 6, "perf-hot-std-function"},
        {"src/sim/hot_std_function.cc", 9, "perf-hot-std-function"},
        {"src/sim/upward_include.cc", 4, "layer-upward-include"},
    };
    EXPECT_EQ(keys(diags, /*suppressed=*/false), expected);
}

TEST(RrmLint, EveryRuleInTheCatalogFiresOnTheFixtures)
{
    const auto diags = lintFixtures();
    std::set<std::string> fired;
    for (const Diagnostic &d : diags)
        fired.insert(d.rule);
    for (const auto &[rule, desc] : rrm::lint::ruleCatalog())
        EXPECT_TRUE(fired.count(rule))
            << "rule '" << rule << "' has no fixture coverage";
}

TEST(RrmLint, ValidSuppressionRecordsFindingWithoutCountingIt)
{
    const auto diags = lintFixtures();
    const std::set<Key> expected{
        {"src/pcm/suppressed_ok.cc", 14, "det-unordered-iter"},
    };
    EXPECT_EQ(keys(diags, /*suppressed=*/true), expected);
    const auto it = std::find_if(
        diags.begin(), diags.end(),
        [](const Diagnostic &d) { return d.suppressed; });
    ASSERT_NE(it, diags.end());
    EXPECT_EQ(it->suppressReason, "sum is order independent");
}

TEST(RrmLint, ReasonlessAllowDoesNotSuppress)
{
    const auto diags = lintFixtures();
    const auto unsup = keys(diags, /*suppressed=*/false);
    // The allow() at suppressed_bad.cc:13 has no reason, so the
    // violation on line 14 must still count.
    EXPECT_TRUE(unsup.count(
        {"src/pcm/suppressed_bad.cc", 14, "det-unordered-iter"}));
}

TEST(RrmLint, OutputIsDeterministic)
{
    const auto a = lintFixtures();
    const auto b = lintFixtures();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(rrm::lint::formatDiagnostic(a[i]),
                  rrm::lint::formatDiagnostic(b[i]));
    EXPECT_EQ(rrm::lint::diagnosticsToJson(a),
              rrm::lint::diagnosticsToJson(b));
}

TEST(RrmLint, RepositoryLintsCleanWithJustifiedSuppressions)
{
    rrm::lint::Config config = rrm::lint::defaultConfig();
    rrm::lint::loadTraceCategories(RRM_LINT_SOURCE_DIR, config);
    const auto diags =
        rrm::lint::lintTree(RRM_LINT_SOURCE_DIR, config);
    const auto sum = rrm::lint::summarize(diags);
    for (const Diagnostic &d : diags) {
        EXPECT_TRUE(d.suppressed) << rrm::lint::formatDiagnostic(d);
        if (d.suppressed) {
            EXPECT_FALSE(d.suppressReason.empty());
        }
    }
    EXPECT_EQ(sum.unsuppressed, 0u);
}

TEST(RrmLint, CatalogDescribesEveryRule)
{
    for (const auto &[rule, desc] : rrm::lint::ruleCatalog()) {
        EXPECT_FALSE(desc.empty()) << rule;
        EXPECT_NE(rule.find('-'), std::string::npos)
            << "rule ids are kebab-case family-prefixed: " << rule;
    }
}
