/**
 * @file
 * Profiler nesting, aggregation, and JSON export — driven through the
 * raw enter/leave API so durations are deterministic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hh"
#include "obs/profiler.hh"

using namespace rrm::obs;

TEST(Profiler, NestsOpenScopesIntoDottedPaths)
{
    Profiler p;
    p.enter("run");
    p.enter("warmup");
    p.leave(30);
    p.enter("measure");
    p.enter("audit");
    p.leave(5);
    p.leave(60);
    p.leave(100);

    const auto &nodes = p.nodes();
    ASSERT_EQ(nodes.size(), 4u);
    EXPECT_EQ(nodes.at("run").totalNs, 100u);
    EXPECT_EQ(nodes.at("run.warmup").totalNs, 30u);
    EXPECT_EQ(nodes.at("run.measure").totalNs, 60u);
    EXPECT_EQ(nodes.at("run.measure.audit").totalNs, 5u);
    EXPECT_EQ(p.depth(), 0u);
}

TEST(Profiler, RepeatedScopesAggregateCallsAndTime)
{
    Profiler p;
    for (int i = 0; i < 3; ++i) {
        p.enter("tick");
        p.leave(10);
    }
    EXPECT_EQ(p.nodes().at("tick").calls, 3u);
    EXPECT_EQ(p.nodes().at("tick").totalNs, 30u);
}

TEST(Profiler, ExclusiveTimeSubtractsDirectChildrenOnly)
{
    Profiler p;
    p.enter("a");
    p.enter("b");
    p.enter("c");
    p.leave(10); // a.b.c
    p.leave(40); // a.b
    p.leave(100); // a

    std::ostringstream os;
    JsonWriter json(os);
    p.writeJson(json);

    // a excl = 100-40 (only a.b is a direct child, not a.b.c);
    // a.b excl = 40-10; a.b.c excl = 10. Percentages are of the
    // root-scope total (a's 100 ns), and integral values print
    // without a fraction.
    EXPECT_EQ(os.str(),
              "{\"a\":{\"calls\":1,\"totalNs\":100,\"exclusiveNs\":60,"
              "\"percentOfTotal\":100},"
              "\"a.b\":{\"calls\":1,\"totalNs\":40,\"exclusiveNs\":30,"
              "\"percentOfTotal\":40},"
              "\"a.b.c\":{\"calls\":1,\"totalNs\":10,"
              "\"exclusiveNs\":10,\"percentOfTotal\":10}}");
}

TEST(Profiler, PercentOfTotalHandlesDottedRootScopes)
{
    // The system profiles under dotted names ("system.run.*") with no
    // recorded parent; those must act as roots for the percentage
    // base instead of collapsing the total to zero.
    Profiler p;
    p.enter("system.run.warmup");
    p.leave(25);
    p.enter("system.run.measure");
    p.enter("decay");
    p.leave(15); // system.run.measure.decay, nested -> not a root
    p.leave(75);

    std::ostringstream os;
    JsonWriter json(os);
    p.writeJson(json);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"system.run.measure\":{\"calls\":1,"
                       "\"totalNs\":75,\"exclusiveNs\":60,"
                       "\"percentOfTotal\":75}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"system.run.warmup\":{\"calls\":1,"
                       "\"totalNs\":25,\"exclusiveNs\":25,"
                       "\"percentOfTotal\":25}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"system.run.measure.decay\":{\"calls\":1,"
                       "\"totalNs\":15,\"exclusiveNs\":15,"
                       "\"percentOfTotal\":15}"),
              std::string::npos)
        << out;
}

TEST(Profiler, SiblingsWithSharedPrefixNamesStayDistinct)
{
    Profiler p;
    p.enter("rrm");
    p.leave(10);
    p.enter("rrm.decay"); // dotted name, NOT a child of "rrm"
    p.leave(20);

    ASSERT_EQ(p.nodes().size(), 2u);
    EXPECT_EQ(p.nodes().at("rrm").totalNs, 10u);
    EXPECT_EQ(p.nodes().at("rrm.decay").totalNs, 20u);
}

TEST(Profiler, ResetDropsAggregatedData)
{
    Profiler p;
    p.enter("x");
    p.leave(1);
    p.reset();
    EXPECT_TRUE(p.nodes().empty());
}

TEST(Profiler, ReportListsEveryNode)
{
    Profiler p;
    p.enter("run");
    p.enter("step");
    p.leave(1000000); // 1 ms
    p.leave(3000000); // 3 ms

    std::ostringstream os;
    p.report(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("profile.run"), std::string::npos);
    EXPECT_NE(out.find("profile.run.step"), std::string::npos);
}

TEST(ScopedTimer, NullProfilerIsANoOp)
{
    ScopedTimer t(nullptr, "nothing"); // must not crash
}

TEST(ScopedTimer, RecordsARealDuration)
{
    Profiler p;
    {
        RRM_PROFILE(&p, "scope");
        // Two macros on different lines coexist in one block.
        RRM_PROFILE(&p, "inner");
    }
    ASSERT_EQ(p.nodes().count("scope"), 1u);
    ASSERT_EQ(p.nodes().count("scope.inner"), 1u);
    EXPECT_EQ(p.depth(), 0u);
}
