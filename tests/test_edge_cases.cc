/**
 * @file
 * Cross-cutting edge-case tests: non-default RRM region sizes (the
 * Figure 13 configurations), tFAW enforcement in the channel, and
 * system-level backpressure accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memctrl/controller.hh"
#include "rrm/region_monitor.hh"
#include "system/system.hh"

namespace rrm
{
namespace
{

// ---- RRM with non-default Retention Region sizes (Fig. 13) ----

class RegionSizes : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RegionSizes, VectorWidthTracksRegionSize)
{
    monitor::RrmConfig cfg;
    cfg.regionBytes = GetParam();
    cfg.numSets = 8;
    cfg.assoc = 2;
    cfg.hotThreshold = 2;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    EXPECT_EQ(cfg.blocksPerRegion(), GetParam() / 64);

    EventQueue queue;
    monitor::RegionMonitor rrm(cfg, queue);
    std::vector<monitor::RefreshRequest> refreshes;
    rrm.setRefreshCallback([&](const monitor::RefreshRequest &r) {
        refreshes.push_back(r);
    });

    // Promote a region via its first and last blocks.
    const Addr base = 3 * GetParam();
    const Addr last_block = base + GetParam() - 64;
    rrm.registerLlcWrite(base, true);
    rrm.registerLlcWrite(last_block, true);
    ASSERT_TRUE(rrm.isHot(base));
    EXPECT_TRUE(rrm.shortRetentionBit(last_block));
    EXPECT_FALSE(rrm.shortRetentionBit(base)); // set pre-promotion

    // One more write sets the first block's bit too.
    rrm.registerLlcWrite(base, true);
    EXPECT_TRUE(rrm.shortRetentionBit(base));

    // Selective refresh touches exactly the two flagged blocks.
    rrm.runSelectiveRefresh();
    ASSERT_EQ(refreshes.size(), 2u);
    EXPECT_EQ(refreshes[0].blockAddr, base);
    EXPECT_EQ(refreshes[1].blockAddr, last_block);
}

TEST_P(RegionSizes, AdjacentRegionsAreIndependent)
{
    monitor::RrmConfig cfg;
    cfg.regionBytes = GetParam();
    cfg.numSets = 8;
    cfg.assoc = 4;
    cfg.hotThreshold = 2;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    EventQueue queue;
    monitor::RegionMonitor rrm(cfg, queue);
    const Addr a = 0;
    const Addr b = GetParam(); // next region
    rrm.registerLlcWrite(a, true);
    rrm.registerLlcWrite(a, true);
    EXPECT_TRUE(rrm.isHot(a));
    EXPECT_FALSE(rrm.isTracked(b));
}

INSTANTIATE_TEST_SUITE_P(Fig13Sizes, RegionSizes,
                         ::testing::Values(2_KiB, 4_KiB, 8_KiB,
                                           16_KiB));

// ---- tFAW enforcement ----

TEST(ChannelTiming, FifthActivateWaitsForTfawWindow)
{
    EventQueue queue;
    memctrl::MemoryParams params;
    memctrl::Controller ctrl(params, queue);
    // Five cold reads to five banks of channel 0 (4 KB stride).
    std::vector<Tick> done;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ctrl.enqueueRead(
            static_cast<Addr>(i) * 4_KiB,
            [&](Tick t) { done.push_back(t); }));
    }
    queue.run();
    ASSERT_EQ(done.size(), 5u);
    std::sort(done.begin(), done.end());
    // The 5th activate can start no earlier than tFAW after the 1st:
    // its completion is at least tFAW + tRCD + tCAS.
    EXPECT_GE(done[4], params.tFAW + params.tRCD + params.tCAS);
}

TEST(ChannelTiming, FourActivatesProceedUnthrottled)
{
    EventQueue queue;
    memctrl::MemoryParams params;
    memctrl::Controller ctrl(params, queue);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ctrl.enqueueRead(
            static_cast<Addr>(i) * 4_KiB,
            [&](Tick t) { done.push_back(t); }));
    }
    queue.run();
    ASSERT_EQ(done.size(), 4u);
    // Bank-parallel activates; only the shared bus serializes the
    // bursts, so the last read ends well before a serial schedule.
    const Tick serial =
        4 * (params.tRCD + params.tCAS + params.burstTime());
    for (Tick t : done)
        EXPECT_LT(t, serial);
}

// ---- System backpressure accounting ----

TEST(SystemBackpressure, HeavyWriteTrafficTriggersRefusals)
{
    sys::SystemConfig cfg;
    cfg.workload = trace::workloadFromName("lbm");
    cfg.scheme = sys::Scheme::staticScheme(pcm::WriteMode::Sets7);
    cfg.windowSeconds = 0.004;
    cfg.warmupFraction = 0.0;
    // Tiny buffers force the backpressure paths.
    cfg.writebackBufferCap = 2;
    cfg.memory.writeQueueCap = 4;
    cfg.memory.writeHighWatermark = 3;
    cfg.memory.writeLowWatermark = 1;
    sys::System system(std::move(cfg));
    const sys::SimResults r = system.run();
    EXPECT_GT(r.demandWrites, 0u);

    const auto *refusals = dynamic_cast<const stats::Scalar *>(
        system.statRoot().find("sys.fillRefusals"));
    ASSERT_NE(refusals, nullptr);
    EXPECT_GT(refusals->value(), 0.0);
    // And the run still makes forward progress.
    EXPECT_GT(r.totalInstructions, 1000u);
}

TEST(SystemBackpressure, SlowWritesHurtMoreUnderTightBuffers)
{
    auto run = [](pcm::WriteMode mode) {
        sys::SystemConfig cfg;
        cfg.workload = trace::workloadFromName("lbm");
        cfg.scheme = sys::Scheme::staticScheme(mode);
        cfg.windowSeconds = 0.006;
        cfg.writebackBufferCap = 4;
        sys::System system(std::move(cfg));
        return system.run().aggregateIpc;
    };
    EXPECT_GT(run(pcm::WriteMode::Sets3),
              run(pcm::WriteMode::Sets7) * 1.02);
}

} // namespace
} // namespace rrm
