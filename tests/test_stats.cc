/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace rrm::stats
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("counter", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    g.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(VectorStat, BinsAndTotal)
{
    StatGroup g("g");
    VectorStat &v = g.addVector("banks", "per bank", {"b0", "b1", "b2"});
    v.add(0);
    v.add(1, 2.0);
    v.add(2, 3.0);
    EXPECT_DOUBLE_EQ(v.value(0), 1.0);
    EXPECT_DOUBLE_EQ(v.value(1), 2.0);
    EXPECT_DOUBLE_EQ(v.value(2), 3.0);
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 3u);
}

TEST(VectorStat, OutOfRangeBinPanics)
{
    StatGroup g("g");
    VectorStat &v = g.addVector("v", "d", {"only"});
    EXPECT_THROW(v.add(1), PanicError);
    EXPECT_THROW(v.value(5), PanicError);
}

TEST(Formula, EvaluatesLazily)
{
    StatGroup g("g");
    Scalar &hits = g.addScalar("hits", "h");
    Scalar &total = g.addScalar("total", "t");
    Formula &ratio = g.addFormula("ratio", "hit ratio", [&] {
        return total.value() > 0 ? hits.value() / total.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(DistributionStat, CountsBucketsAndSamples)
{
    StatGroup g("g");
    DistributionStat &d =
        g.addDistribution("lat", "latency", {100, 200});
    d.add(50);
    d.add(150);
    d.add(250, 2);
    EXPECT_EQ(d.histogram().count(0), 1u);
    EXPECT_EQ(d.histogram().count(1), 1u);
    EXPECT_EQ(d.histogram().count(2), 2u);
    EXPECT_EQ(d.samples().count(), 3u);
}

TEST(StatGroup, FindLocatesNestedStats)
{
    StatGroup root("system");
    StatGroup &child = root.addChild("memctrl");
    Scalar &reads = child.addScalar("reads", "read count");
    reads += 7;

    const StatBase *found = root.find("memctrl.reads");
    ASSERT_NE(found, nullptr);
    const auto *as_scalar = dynamic_cast<const Scalar *>(found);
    ASSERT_NE(as_scalar, nullptr);
    EXPECT_DOUBLE_EQ(as_scalar->value(), 7.0);
}

TEST(StatGroup, FindReturnsNullForUnknownPaths)
{
    StatGroup root("system");
    root.addChild("a").addScalar("x", "x");
    EXPECT_EQ(root.find("b.x"), nullptr);
    EXPECT_EQ(root.find("a.y"), nullptr);
    EXPECT_EQ(root.find("x"), nullptr);
}

TEST(StatGroup, DumpPrefixesDottedPaths)
{
    StatGroup root("sys");
    StatGroup &c = root.addChild("cache");
    c.addScalar("hits", "hit count") += 5;
    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.cache.hits"), std::string::npos);
    EXPECT_NE(out.find("hit count"), std::string::npos);
}

TEST(StatGroup, DumpIncludesVectorBinsAndTotal)
{
    StatGroup root("sys");
    root.addVector("v", "vec", {"a", "b"}).add(1, 2.0);
    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.v::a"), std::string::npos);
    EXPECT_NE(out.find("sys.v::b"), std::string::npos);
    EXPECT_NE(out.find("sys.v::total"), std::string::npos);
}

TEST(StatGroup, ResetRecursesIntoChildren)
{
    StatGroup root("sys");
    Scalar &a = root.addScalar("a", "a");
    Scalar &b = root.addChild("c").addScalar("b", "b");
    a += 1;
    b += 2;
    root.reset();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(StatGroup, FormulaSurvivesReset)
{
    StatGroup root("sys");
    Scalar &a = root.addScalar("a", "a");
    Formula &f =
        root.addFormula("f", "2a", [&] { return 2.0 * a.value(); });
    a += 3;
    root.reset();
    a += 1;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Formula, ResetIsASilentNoOp)
{
    Formula f("f", "constant", [] { return 5.0; });
    f.reset();
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Formula, NullFunctionValueIsZero)
{
    Formula f("f", "empty", Formula::Fn{});
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

TEST(StatGroup, FindResolvesLaterDuplicateNamedChildren)
{
    // Two same-named children (e.g. per-channel groups registered
    // under one name): find() must try each in registration order,
    // so a stat that only exists in the second still resolves.
    StatGroup root("sys");
    StatGroup &first = root.addChild("chan");
    StatGroup &second = root.addChild("chan");
    first.addScalar("reads", "r") += 1;
    Scalar &writes = second.addScalar("writes", "w");
    writes += 7;

    const auto *hit =
        dynamic_cast<const Scalar *>(root.find("chan.writes"));
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->value(), 7.0);
    // And the first child still wins for names both define.
    EXPECT_EQ(root.find("chan.reads"), first.find("reads"));
}

TEST(StatGroup, FindFallsBackToWholePathStatNames)
{
    // A stat whose own name contains dots is matched as a whole
    // path when no child chain consumes the prefix.
    StatGroup root("sys");
    Scalar &odd = root.addScalar("mem.reads", "dotted name");
    odd += 3;
    EXPECT_EQ(root.find("mem.reads"), &odd);
}

TEST(HistogramStat, BucketGeometryIsLog2)
{
    EXPECT_EQ(HistogramStat::bucketOf(0), 0u);
    EXPECT_EQ(HistogramStat::bucketOf(1), 1u);
    EXPECT_EQ(HistogramStat::bucketOf(2), 2u);
    EXPECT_EQ(HistogramStat::bucketOf(3), 2u);
    EXPECT_EQ(HistogramStat::bucketOf(4), 3u);
    EXPECT_EQ(HistogramStat::bucketOf(7), 3u);
    EXPECT_EQ(HistogramStat::bucketOf(8), 4u);
    EXPECT_EQ(HistogramStat::bucketOf(1023), 10u);
    EXPECT_EQ(HistogramStat::bucketOf(1024), 11u);
    EXPECT_EQ(HistogramStat::bucketOf(~std::uint64_t(0)), 64u);
    static_assert(HistogramStat::kNumBuckets == 65);
}

TEST(HistogramStat, BucketLabelsAreDeterministic)
{
    EXPECT_EQ(HistogramStat::bucketLabel(0), "0");
    EXPECT_EQ(HistogramStat::bucketLabel(1), "[1,2)");
    EXPECT_EQ(HistogramStat::bucketLabel(2), "[2,4)");
    EXPECT_EQ(HistogramStat::bucketLabel(3), "[4,8)");
    EXPECT_EQ(HistogramStat::bucketLabel(64),
              "[9223372036854775808,inf)");
    EXPECT_THROW(HistogramStat::bucketLabel(65), PanicError);
}

TEST(HistogramStat, AccumulatesMomentsAndCounts)
{
    StatGroup g("g");
    HistogramStat &h = g.addHistogram("lat", "latency");
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minSample(), 0u); // empty: both extremes read 0
    EXPECT_EQ(h.maxSample(), 0u);

    h.add(0);
    h.add(1);
    h.add(5);
    h.add(6, 2); // weighted: two samples of value 6
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 18.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.6);
    EXPECT_EQ(h.minSample(), 0u);
    EXPECT_EQ(h.maxSample(), 6u);
    EXPECT_EQ(h.count(0), 1u); // the zero
    EXPECT_EQ(h.count(1), 1u); // [1,2)
    EXPECT_EQ(h.count(2), 0u); // [2,4)
    EXPECT_EQ(h.count(3), 3u); // [4,8): 5, 6, 6
}

TEST(HistogramStat, ResetClearsEverything)
{
    StatGroup g("g");
    HistogramStat &h = g.addHistogram("h", "d");
    h.add(42);
    g.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.minSample(), 0u);
    EXPECT_EQ(h.maxSample(), 0u);
    for (std::size_t i = 0; i < HistogramStat::kNumBuckets; ++i)
        EXPECT_EQ(h.count(i), 0u);
}

TEST(HistogramStat, VisitorDispatchesToHistogramCallback)
{
    struct Probe : StatVisitor
    {
        void visitScalar(const std::string &, const Scalar &) override {}
        void visitVector(const std::string &,
                         const VectorStat &) override
        {}
        void visitFormula(const std::string &, const Formula &) override
        {}
        void visitDistribution(const std::string &,
                               const DistributionStat &) override
        {}
        void
        visitHistogram(const std::string &path,
                       const HistogramStat &stat) override
        {
            paths.push_back(path);
            samples += stat.samples();
        }
        std::vector<std::string> paths;
        std::uint64_t samples = 0;
    };

    StatGroup g("g");
    g.addHistogram("h", "d").add(9);
    Probe probe;
    g.visit(probe);
    ASSERT_EQ(probe.paths.size(), 1u);
    EXPECT_EQ(probe.paths[0], "g.h");
    EXPECT_EQ(probe.samples, 1u);
}

} // namespace
} // namespace rrm::stats
