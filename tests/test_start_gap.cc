/**
 * @file
 * Tests for the Start-Gap wear-leveling substrate.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"
#include "memctrl/start_gap.hh"

namespace rrm::memctrl
{
namespace
{

TEST(StartGapDomain, InitialMappingIsIdentity)
{
    StartGapDomain d(16, 10);
    for (std::uint64_t l = 0; l < 16; ++l)
        EXPECT_EQ(d.physicalSlot(l), l);
}

TEST(StartGapDomain, MappingIsAlwaysInjective)
{
    StartGapDomain d(16, 1); // rotate on every write
    for (int step = 0; step < 200; ++step) {
        std::set<std::uint64_t> slots;
        for (std::uint64_t l = 0; l < d.numLines(); ++l) {
            const auto s = d.physicalSlot(l);
            EXPECT_LE(s, d.numLines()); // N+1 slots
            EXPECT_NE(s, d.gap()) << "line mapped onto the gap";
            slots.insert(s);
        }
        EXPECT_EQ(slots.size(), d.numLines()) << "step " << step;
        d.onWrite();
    }
}

TEST(StartGapDomain, GapMovesEveryPeriodWrites)
{
    StartGapDomain d(16, 10);
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(d.onWrite());
    EXPECT_TRUE(d.onWrite());
    EXPECT_EQ(d.gapMoves(), 1u);
    EXPECT_EQ(d.gap(), 15u);
}

TEST(StartGapDomain, StartAdvancesAfterFullGapSweep)
{
    StartGapDomain d(8, 1);
    EXPECT_EQ(d.start(), 0u);
    // Gap starts at 8; 8 moves bring it to 0, the 9th wraps it and
    // bumps start.
    for (int i = 0; i < 8; ++i)
        d.onWrite();
    EXPECT_EQ(d.gap(), 0u);
    EXPECT_EQ(d.start(), 0u);
    d.onWrite();
    EXPECT_EQ(d.gap(), 8u);
    EXPECT_EQ(d.start(), 1u);
}

TEST(StartGapDomain, EveryLineVisitsEverySlotOverTime)
{
    StartGapDomain d(8, 1);
    std::vector<std::set<std::uint64_t>> visited(8);
    // One full start rotation = (N+1) gap sweeps x (N+1) moves.
    for (int step = 0; step < 9 * 9 + 1; ++step) {
        for (std::uint64_t l = 0; l < 8; ++l)
            visited[l].insert(d.physicalSlot(l));
        d.onWrite();
    }
    for (std::uint64_t l = 0; l < 8; ++l)
        EXPECT_GE(visited[l].size(), 8u) << "line " << l;
}

TEST(StartGapDomain, DegenerateConfigsPanic)
{
    EXPECT_THROW(StartGapDomain(1, 10), PanicError);
    EXPECT_THROW(StartGapDomain(8, 0), PanicError);
}

TEST(StartGapRemapper, PreservesOffsetsAndDomains)
{
    StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 64;
    StartGapRemapper remap(1_MiB, p);
    EXPECT_EQ(remap.numDomains(), 64u);

    Random rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = rng.uniform(1_MiB);
        const Addr out = remap.remap(addr);
        EXPECT_LT(out, 1_MiB);
        EXPECT_EQ(out % 256, addr % 256) << "intra-line offset moved";
        // Remap never crosses domain boundaries.
        EXPECT_EQ(out / (256 * 64), addr / (256 * 64));
    }
}

TEST(StartGapRemapper, IdentityBeforeAnyRotation)
{
    StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 1024;
    StartGapRemapper remap(1_MiB, p);
    for (Addr a : {Addr(0), Addr(4096), Addr(1_MiB - 64)})
        EXPECT_EQ(remap.remap(a), a);
}

TEST(StartGapRemapper, PartialDomainPanics)
{
    // 1 MiB at default 4 MB domains is not a whole domain.
    EXPECT_THROW(StartGapRemapper(1_MiB), PanicError);
}

TEST(StartGapRemapper, RotationChangesTheMapping)
{
    StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 16;
    p.gapWritePeriod = 1;
    StartGapRemapper remap(16 * 256, p);
    const Addr probe = 0;
    const Addr before = remap.remap(probe);
    for (int i = 0; i < 20; ++i)
        remap.onWrite(probe);
    // After the gap sweeps past the probe's slot, its physical home
    // must differ.
    EXPECT_NE(remap.remap(probe), before);
}

TEST(StartGapRemapper, SpreadsAHotLineAcrossSlots)
{
    StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 16;
    p.gapWritePeriod = 4;
    StartGapRemapper remap(16 * 256, p);
    std::set<Addr> homes;
    // Hammer one logical line; wear leveling must migrate it.
    for (int i = 0; i < 16 * 17 * 4 * 4; ++i) {
        homes.insert(remap.remap(0));
        remap.onWrite(0);
    }
    EXPECT_GE(homes.size(), 14u);
}

TEST(StartGapRemapper, GapMoveOverheadMatchesPeriod)
{
    StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 64;
    p.gapWritePeriod = 100;
    StartGapRemapper remap(1_MiB, p);
    Random rng(9);
    int moves = 0;
    const int writes = 100000;
    for (int i = 0; i < writes; ++i)
        moves += remap.onWrite(rng.uniform(1_MiB));
    // ~1 extra write per 100 demand writes (the paper's <1% figure).
    EXPECT_NEAR(static_cast<double>(moves) / writes, 0.01, 0.002);
}

} // namespace
} // namespace rrm::memctrl
