/**
 * @file
 * Tests for the DelayQueue fixed-latency hop (sim/delay_queue.hh):
 * FIFO delivery, event-count equivalence with per-item scheduling,
 * and the System-level wiring behind SystemConfig::useDelayQueues.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/delay_queue.hh"
#include "system/system.hh"

namespace rrm
{
namespace
{

TEST(DelayQueue, DeliversAfterFixedDelay)
{
    EventQueue q;
    DelayQueue dq(q, 100);
    Tick delivered = 0;
    q.schedule(50, [&] { dq.push([&] { delivered = q.now(); }); });
    q.run();
    EXPECT_EQ(delivered, 150u);
    EXPECT_TRUE(dq.empty());
}

TEST(DelayQueue, FifoAmongPushedItems)
{
    EventQueue q;
    DelayQueue dq(q, 10);
    std::vector<int> order;
    q.schedule(0, [&] {
        dq.push([&] { order.push_back(1); });
        dq.push([&] { order.push_back(2); });
        dq.push([&] { order.push_back(3); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DelayQueue, EventCountMatchesPerItemScheduling)
{
    // N items through a DelayQueue must cost exactly N executed
    // events, same as N individual schedule() calls: the armed event
    // accounts for one delivery, coalesced ones are credited.
    constexpr int n = 37;

    EventQueue central;
    for (int i = 0; i < n; ++i) {
        central.schedule(
            5, [] {}, EventPriority::Default);
    }
    central.run();

    EventQueue q;
    DelayQueue dq(q, 5);
    q.schedule(0, [&] {
        for (int i = 0; i < n; ++i)
            dq.push([] {});
    });
    q.run();

    // The delay-queue run also executes the item-pushing event.
    EXPECT_EQ(q.eventsExecuted(), central.eventsExecuted() + 1);
}

TEST(DelayQueue, BatchesShareOneArmedEvent)
{
    EventQueue q;
    DelayQueue dq(q, 20);
    q.schedule(0, [&] {
        for (int i = 0; i < 8; ++i)
            dq.push([] {});
    });
    // After the pushes, the central queue holds only the armed event.
    q.step();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(dq.pending(), 8u);
    q.run();
    EXPECT_TRUE(dq.empty());
}

TEST(DelayQueue, SpreadDueTicksRearm)
{
    EventQueue q;
    DelayQueue dq(q, 10);
    std::vector<Tick> fired;
    q.schedule(0, [&] { dq.push([&] { fired.push_back(q.now()); }); });
    q.schedule(5, [&] { dq.push([&] { fired.push_back(q.now()); }); });
    q.schedule(12, [&] { dq.push([&] { fired.push_back(q.now()); }); });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 15, 22}));
}

TEST(DelayQueue, PushFromDeliveryChains)
{
    EventQueue q;
    DelayQueue dq(q, 7);
    std::vector<Tick> fired;
    std::function<void()> hop = [&] {
        fired.push_back(q.now());
        if (fired.size() < 3)
            dq.push([&hop] { hop(); });
    };
    q.schedule(0, [&] { dq.push([&hop] { hop(); }); });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{7, 14, 21}));
    dq.audit();
}

TEST(DelayQueue, ZeroDelayPanics)
{
    EventQueue q;
    EXPECT_THROW(DelayQueue(q, 0), PanicError);
}

/**
 * System-level equivalence: the read-retry backoff routed through a
 * DelayQueue must leave results identical to the central-queue
 * schedule — same simulated work, same event count (retries are rare
 * and never share their exact (tick, priority) with unrelated events
 * in this configuration).
 */
TEST(DelayQueue, SystemResultsMatchCentralQueue)
{
    auto configFor = [](bool use_dq) {
        sys::SystemConfig cfg;
        cfg.workload = trace::workloadFromName("lbm");
        cfg.scheme = sys::Scheme::rrmScheme();
        cfg.timeScale = 50.0;
        cfg.windowSeconds = 0.006;
        cfg.warmupFraction = 0.25;
        cfg.seed = 1;
        cfg.useDelayQueues = use_dq;
        return cfg;
    };

    sys::System central(configFor(false));
    const sys::SimResults a = central.run();
    sys::System delayed(configFor(true));
    const sys::SimResults b = delayed.run();

    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_DOUBLE_EQ(a.aggregateIpc, b.aggregateIpc);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
}

} // namespace
} // namespace rrm
