/**
 * @file
 * Crash-safe checkpointing: the .rckpt container (round-trip,
 * corruption detection), the byte-identity contract (a run killed at
 * any published epoch checkpoint and resumed produces the same final
 * run record as the same checkpoint-enabled run left undisturbed),
 * fallback from corrupted/truncated checkpoints to older ones, the
 * SIGKILL-mid-flight path (a forked child killed while simulating),
 * and the SIGINT emergency-checkpoint path. See DESIGN.md section 16.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "ckpt/ckpt.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "run/runner.hh"
#include "system/system.hh"

namespace rrm::sys
{
namespace
{

namespace fs = std::filesystem;

// .rckpt framing constants (mirrors src/ckpt/ckpt.cc) used to compute
// per-section payload offsets for targeted corruption.
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 4;
constexpr std::size_t kSectionFrameSize = 4 + 8 + 4;

/** Fresh empty directory under the system temp dir. */
fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() /
                         ("rrm_test_ckpt_" + std::to_string(::getpid()) +
                          "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::vector<std::uint8_t>
slurpBytes(const fs::path &path)
{
    const std::string s = slurp(path);
    return {s.begin(), s.end()};
}

void
writeBytes(const fs::path &path, const std::vector<std::uint8_t> &data)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(data.data()),
             static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(os) << "cannot write " << path;
}

/** Periodic epoch checkpoints in `dir`, oldest first (lexical order). */
std::vector<fs::path>
epochCheckpoints(const fs::path &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".rckpt" &&
            entry.path().filename().string().find("-final") ==
                std::string::npos)
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

/**
 * A checkpoint-enabled config. All byte-identity tests compare runs
 * of THIS config against each other: the contract holds between
 * checkpoint-enabled runs (they quiesce at the same absolute epoch
 * boundaries), not against checkpoint-disabled runs.
 */
SystemConfig
ckptConfig(const std::string &workload, Scheme scheme,
           const fs::path &ckpt_dir, const fs::path &record,
           bool faults)
{
    SystemConfig cfg;
    cfg.workload = trace::workloadFromName(workload);
    cfg.scheme = std::move(scheme);
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.024;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    cfg.checkpointEveryEpochs = 1;
    cfg.checkpointDir = ckpt_dir.string();
    cfg.obs.runRecordFile = record.string();
    if (faults) {
        cfg.fault.retentionTracking = true;
        cfg.fault.transientWriteFailureRate = 1e-6;
    }
    return cfg;
}

/**
 * Run the reference (undisturbed, checkpoint-enabled) run and return
 * its run record; `dir` ends up holding every published checkpoint.
 */
std::string
referenceRun(const SystemConfig &cfg)
{
    SystemConfig copy = cfg;
    System system(std::move(copy));
    system.run();
    return slurp(cfg.obs.runRecordFile);
}

/**
 * Resume from whatever `dir` holds and return {record, epoch resumed
 * from}.
 */
std::pair<std::string, std::uint64_t>
resumeRun(const SystemConfig &cfg, const fs::path &dir,
          const fs::path &record)
{
    SystemConfig copy = cfg;
    copy.checkpointDir = dir.string();
    copy.obs.runRecordFile = record.string();
    copy.resumeFromCheckpoint = true;
    System system(std::move(copy));
    system.run();
    return {slurp(record), system.resumedFromEpoch()};
}

class CkptResume : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Pin the run-record timestamp (reproducible-builds
        // convention) so records are comparable byte for byte.
        ::setenv("SOURCE_DATE_EPOCH", "1700000000", 1);
        clearInterruptRequest();
    }
    void TearDown() override { clearInterruptRequest(); }
};

// ---------------------------------------------------------------------
// Container round-trip and corruption detection
// ---------------------------------------------------------------------

TEST(CkptContainer, RoundTripsHeaderAndSections)
{
    ckpt::CkptHeader header;
    header.configFingerprint = 0x1122334455667788ull;
    header.epochIndex = 7;
    header.tick = 123456789;
    ckpt::CkptWriter writer(header);

    ckpt::ChunkWriter a;
    a.u32(42);
    a.str("hello");
    a.f64(2.5);
    writer.section(ckpt::sectionId('T', 'S', 'T', 'A'), a);
    ckpt::ChunkWriter b;
    b.u64(99);
    b.b(true);
    writer.section(ckpt::sectionId('T', 'S', 'T', 'B'), b);

    const ckpt::CkptReader reader(writer.serialize(), "mem");
    EXPECT_EQ(reader.header().configFingerprint,
              header.configFingerprint);
    EXPECT_EQ(reader.header().epochIndex, 7u);
    EXPECT_EQ(reader.header().tick, 123456789u);
    ASSERT_EQ(reader.sectionIds().size(), 2u);

    ckpt::ChunkReader ra =
        reader.section(ckpt::sectionId('T', 'S', 'T', 'A'));
    EXPECT_EQ(ra.u32(), 42u);
    EXPECT_EQ(ra.str(), "hello");
    EXPECT_DOUBLE_EQ(ra.f64(), 2.5);
    ra.expectDone();

    ckpt::ChunkReader rb =
        reader.section(ckpt::sectionId('T', 'S', 'T', 'B'));
    EXPECT_EQ(rb.u64(), 99u);
    EXPECT_TRUE(rb.b());
    rb.expectDone();

    EXPECT_THROW(reader.section(ckpt::sectionId('N', 'O', 'P', 'E')),
                 ckpt::CkptError);
    EXPECT_THROW(ra.u8(), ckpt::CkptError); // past the end
}

TEST(CkptContainer, EverySingleByteFlipIsDetected)
{
    ckpt::CkptHeader header;
    header.configFingerprint = 0xABCDabcd12345678ull;
    header.epochIndex = 3;
    header.tick = 1000;
    ckpt::CkptWriter writer(header);
    ckpt::ChunkWriter payload;
    for (int i = 0; i < 16; ++i)
        payload.u32(static_cast<std::uint32_t>(i * 7));
    writer.section(ckpt::sectionId('T', 'S', 'T', 'A'), payload);
    const std::vector<std::uint8_t> good = writer.serialize();

    // CRCs cover the header, every payload, and the whole file: no
    // single-byte flip anywhere can go unnoticed.
    for (std::size_t i = 0; i < good.size(); ++i) {
        std::vector<std::uint8_t> bad = good;
        bad[i] ^= 0x01;
        EXPECT_THROW(ckpt::CkptReader(std::move(bad), "flipped"),
                     ckpt::CkptError)
            << "flip at byte " << i << " was accepted";
    }
}

TEST(CkptContainer, TruncationAtEveryLengthIsDetected)
{
    ckpt::CkptHeader header;
    ckpt::CkptWriter writer(header);
    ckpt::ChunkWriter payload;
    payload.u64(7);
    writer.section(ckpt::sectionId('T', 'S', 'T', 'A'), payload);
    const std::vector<std::uint8_t> good = writer.serialize();

    for (std::size_t len = 0; len < good.size(); ++len) {
        std::vector<std::uint8_t> cut(good.begin(),
                                      good.begin() + len);
        EXPECT_THROW(ckpt::CkptReader(std::move(cut), "cut"),
                     ckpt::CkptError)
            << "truncation to " << len << " bytes was accepted";
    }
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

TEST_F(CkptResume, ConfigValidationRejectsInconsistentCheckpointing)
{
    const fs::path dir = freshDir("validate");
    SystemConfig cfg = ckptConfig(
        "lbm", Scheme::staticScheme(pcm::WriteMode::Sets7), dir,
        dir / "rec.json", /*faults=*/false);

    cfg.checkpointDir.clear(); // every > 0 but nowhere to publish
    EXPECT_THROW(System{std::move(cfg)}, FatalError);

    cfg = ckptConfig("lbm", Scheme::staticScheme(pcm::WriteMode::Sets7),
                     dir, dir / "rec.json", false);
    cfg.checkpointEveryEpochs = 0;
    cfg.resumeFromCheckpoint = true; // resume without a cadence
    EXPECT_THROW(System{std::move(cfg)}, FatalError);
}

// ---------------------------------------------------------------------
// Byte-identity: resume from each published epoch equals the
// undisturbed reference, for every scheme family (with faults on).
// ---------------------------------------------------------------------

struct SchemeCase
{
    const char *label;
    Scheme scheme;
};

class CkptResumePerScheme
    : public CkptResume,
      public ::testing::WithParamInterface<int>
{
  protected:
    static SchemeCase scheme()
    {
        switch (GetParam()) {
        case 0:
            return {"static7",
                    Scheme::staticScheme(pcm::WriteMode::Sets7)};
        case 1:
            return {"rrm", Scheme::rrmScheme()};
        default:
            return {"adaptive", Scheme::adaptiveRrmScheme()};
        }
    }
};

TEST_P(CkptResumePerScheme, ResumeFromEveryEpochIsByteIdentical)
{
    const SchemeCase sc = scheme();
    const fs::path ref_dir =
        freshDir(std::string("identity_ref_") + sc.label);
    const SystemConfig cfg =
        ckptConfig("lbm", sc.scheme, ref_dir, ref_dir / "rec.json",
                   /*faults=*/true);
    const std::string ref_record = referenceRun(cfg);

    const std::vector<fs::path> ckpts = epochCheckpoints(ref_dir);
    ASSERT_GE(ckpts.size(), 3u)
        << "window too short to publish three checkpoints";

    // "Killed after epoch k": a directory holding exactly the files a
    // run killed at that point would have left behind, for an early,
    // a middle, and the last epoch.
    const std::size_t picks[] = {1, ckpts.size() / 2 + 1, ckpts.size()};
    for (const std::size_t keep : picks) {
        const fs::path dir = freshDir(std::string("identity_") +
                                      sc.label + "_" +
                                      std::to_string(keep));
        for (std::size_t i = 0; i < keep; ++i)
            fs::copy_file(ckpts[i], dir / ckpts[i].filename());
        const auto [record, epoch] =
            resumeRun(cfg, dir, dir / "rec.json");
        EXPECT_GT(epoch, 0u) << "resume fell back to a cold start";
        EXPECT_EQ(record, ref_record)
            << sc.label << ": resume from epoch " << epoch
            << " diverged from the reference run";
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, CkptResumePerScheme,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// Corruption fallback
// ---------------------------------------------------------------------

TEST_F(CkptResume, FlippingOneByteInEachSectionInvalidatesTheFile)
{
    const fs::path dir = freshDir("flip_sections");
    const SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), dir, dir / "rec.json",
                   /*faults=*/true);
    referenceRun(cfg);
    const std::vector<fs::path> ckpts = epochCheckpoints(dir);
    ASSERT_GE(ckpts.size(), 1u);

    const std::vector<std::uint8_t> good = slurpBytes(ckpts.back());
    const ckpt::CkptReader reader(ckpts.back().string());

    // Walk the frames to find each payload, flip its middle byte, and
    // check the loader rejects the file every time.
    std::size_t offset = kHeaderSize;
    for (const std::uint32_t id : reader.sectionIds()) {
        const std::size_t size = reader.sectionSize(id);
        const std::size_t payload_at = offset + kSectionFrameSize;
        ASSERT_LE(payload_at + size, good.size());
        if (size > 0) {
            std::vector<std::uint8_t> bad = good;
            bad[payload_at + size / 2] ^= 0xFF;
            const fs::path bad_path = dir / "corrupt.rckpt.probe";
            writeBytes(bad_path, bad);
            const std::string why =
                ckpt::CkptReader::validateFile(bad_path.string());
            EXPECT_FALSE(why.empty())
                << "flip inside section " << ckpt::sectionName(id)
                << " was accepted";
        }
        offset = payload_at + size;
    }
}

TEST_F(CkptResume, CorruptNewestFallsBackToPreviousCheckpoint)
{
    const fs::path ref_dir = freshDir("fallback_ref");
    const SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), ref_dir,
                   ref_dir / "rec.json", /*faults=*/true);
    const std::string ref_record = referenceRun(cfg);
    const std::vector<fs::path> ckpts = epochCheckpoints(ref_dir);
    ASSERT_GE(ckpts.size(), 2u);

    // Newest checkpoint corrupted in place: resume must skip it with
    // a warning and restore the previous one — still byte-identical.
    const fs::path dir = freshDir("fallback_corrupt");
    for (const fs::path &p : ckpts)
        fs::copy_file(p, dir / p.filename());
    std::vector<std::uint8_t> bytes =
        slurpBytes(dir / ckpts.back().filename());
    bytes[bytes.size() / 2] ^= 0xFF;
    writeBytes(dir / ckpts.back().filename(), bytes);

    const auto [record, epoch] = resumeRun(cfg, dir, dir / "rec.json");
    const ckpt::CkptReader prev(ckpts[ckpts.size() - 2].string());
    EXPECT_EQ(epoch, prev.header().epochIndex);
    EXPECT_EQ(record, ref_record);
}

TEST_F(CkptResume, TruncatedNewestFallsBackToPreviousCheckpoint)
{
    const fs::path ref_dir = freshDir("truncate_ref");
    const SystemConfig cfg = ckptConfig(
        "lbm", Scheme::staticScheme(pcm::WriteMode::Sets7), ref_dir,
        ref_dir / "rec.json", /*faults=*/false);
    const std::string ref_record = referenceRun(cfg);
    const std::vector<fs::path> ckpts = epochCheckpoints(ref_dir);
    ASSERT_GE(ckpts.size(), 2u);

    const fs::path dir = freshDir("truncate");
    for (const fs::path &p : ckpts)
        fs::copy_file(p, dir / p.filename());
    const fs::path newest = dir / ckpts.back().filename();
    fs::resize_file(newest, fs::file_size(newest) / 2);

    const auto [record, epoch] = resumeRun(cfg, dir, dir / "rec.json");
    const ckpt::CkptReader prev(ckpts[ckpts.size() - 2].string());
    EXPECT_EQ(epoch, prev.header().epochIndex);
    EXPECT_EQ(record, ref_record);
}

TEST_F(CkptResume, AllCheckpointsCorruptMeansCleanColdStart)
{
    const fs::path ref_dir = freshDir("cold_ref");
    const SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), ref_dir,
                   ref_dir / "rec.json", /*faults=*/false);
    const std::string ref_record = referenceRun(cfg);
    const std::vector<fs::path> ckpts = epochCheckpoints(ref_dir);
    ASSERT_GE(ckpts.size(), 1u);

    const fs::path dir = freshDir("cold");
    std::vector<std::uint8_t> bytes = slurpBytes(ckpts.back());
    bytes[bytes.size() / 3] ^= 0xFF;
    writeBytes(dir / ckpts.back().filename(), bytes);

    const auto [record, epoch] = resumeRun(cfg, dir, dir / "rec.json");
    EXPECT_EQ(epoch, 0u); // cold start
    EXPECT_EQ(record, ref_record);
}

TEST_F(CkptResume, FingerprintMismatchIsRejected)
{
    const fs::path ref_dir = freshDir("fp_ref");
    const SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), ref_dir,
                   ref_dir / "rec.json", /*faults=*/false);
    referenceRun(cfg);
    ASSERT_GE(epochCheckpoints(ref_dir).size(), 1u);

    // Same checkpoint directory, different seed: a different run.
    // Resume must refuse the foreign checkpoints and start cold.
    SystemConfig other = cfg;
    other.seed = 2;
    const fs::path rec = ref_dir / "rec_other.json";
    const auto [record, epoch] = resumeRun(other, ref_dir, rec);
    (void)record;
    EXPECT_EQ(epoch, 0u);
}

// ---------------------------------------------------------------------
// SIGKILL mid-flight: a forked child is killed while simulating; the
// parent resumes from whatever the child managed to publish.
// ---------------------------------------------------------------------

TEST_F(CkptResume, KilledChildResumesByteIdentical)
{
    const fs::path ref_dir = freshDir("kill_ref");
    const SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), ref_dir,
                   ref_dir / "rec.json", /*faults=*/true);
    const std::string ref_record = referenceRun(cfg);
    const std::size_t total = epochCheckpoints(ref_dir).size();
    ASSERT_GE(total, 3u);

    // Kill after the 1st, 2nd, and 3rd published checkpoint.
    for (const std::size_t target : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}}) {
        const fs::path dir =
            freshDir("kill_" + std::to_string(target));
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            // Child: simulate until killed. _exit on any outcome so
            // gtest never runs twice.
            try {
                SystemConfig child_cfg = cfg;
                child_cfg.checkpointDir = dir.string();
                child_cfg.obs.runRecordFile =
                    (dir / "rec.json").string();
                System system(std::move(child_cfg));
                system.run();
            } catch (...) {
            }
            ::_exit(0);
        }

        // Parent: wait for the target number of published checkpoints
        // (bounded), then SIGKILL — no destructors, no atexit, the
        // closest in-process approximation of a crash.
        for (int spin = 0; spin < 100000; ++spin) {
            if (epochCheckpoints(dir).size() >= target)
                break;
            int status = 0;
            if (::waitpid(pid, &status, WNOHANG) == pid)
                break; // finished before we could kill it
            ::usleep(200);
        }
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        ASSERT_GE(epochCheckpoints(dir).size(), 1u)
            << "child was killed before publishing anything";

        const auto [record, epoch] =
            resumeRun(cfg, dir, dir / "resumed.json");
        EXPECT_GT(epoch, 0u);
        EXPECT_EQ(record, ref_record)
            << "resume after SIGKILL at checkpoint " << target
            << " diverged";
    }
}

// ---------------------------------------------------------------------
// Graceful interrupt: emergency checkpoint + Runner statuses
// ---------------------------------------------------------------------

TEST_F(CkptResume, InterruptWritesValidEmergencyCheckpoint)
{
    const fs::path dir = freshDir("interrupt");
    SystemConfig cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), dir, dir / "rec.json",
                   /*faults=*/false);

    requestInterrupt();
    System system(std::move(cfg));
    EXPECT_THROW(system.run(), SimInterruptedError);
    clearInterruptRequest();

    // A -final.rckpt must exist and validate cleanly.
    std::vector<fs::path> finals;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().find("-final.rckpt") !=
            std::string::npos)
            finals.push_back(entry.path());
    }
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(ckpt::CkptReader::validateFile(finals[0].string()), "");

    // An emergency checkpoint is best-effort (arbitrary quiesce
    // point), so no byte-identity claim — but the resumed run must
    // complete and produce a record.
    SystemConfig resume_cfg =
        ckptConfig("lbm", Scheme::rrmScheme(), dir,
                   dir / "resumed.json", /*faults=*/false);
    resume_cfg.resumeFromCheckpoint = true;
    System resumed(std::move(resume_cfg));
    const SimResults r = resumed.run();
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_FALSE(slurp(dir / "resumed.json").empty());
}

TEST_F(CkptResume, RunnerCancelsCleanlyWhenInterruptedBeforeStart)
{
    run::RunPlan plan;
    {
        const fs::path dir = freshDir("runner_cancel");
        plan.add(ckptConfig("lbm",
                            Scheme::staticScheme(pcm::WriteMode::Sets7),
                            dir, dir / "rec.json", false));
    }
    requestInterrupt();
    run::RunnerOptions opts;
    opts.jobs = 1;
    const run::RunReport report = run::Runner(opts).execute(plan);
    clearInterruptRequest();
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].status, run::RunStatus::Cancelled);
    EXPECT_EQ(report.interruptedCount(), 0u);
}

TEST(RunStatusNames, InterruptedHasAName)
{
    EXPECT_EQ(
        std::string(run::runStatusName(run::RunStatus::Interrupted)),
        "interrupted");
}

} // namespace
} // namespace rrm::sys
