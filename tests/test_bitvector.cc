/**
 * @file
 * Tests for the fixed-width BitVector.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitvector.hh"

namespace rrm
{
namespace
{

class BitVectorWidths : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BitVectorWidths, StartsAllClear)
{
    BitVector v(GetParam());
    EXPECT_EQ(v.size(), GetParam());
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t i = 0; i < v.size(); ++i)
        ASSERT_FALSE(v.test(i));
}

TEST_P(BitVectorWidths, SetTestClearRoundTrip)
{
    BitVector v(GetParam());
    if (v.size() == 0)
        return;
    const std::size_t probes[] = {0, v.size() / 2, v.size() - 1};
    for (std::size_t i : probes) {
        v.set(i);
        EXPECT_TRUE(v.test(i));
    }
    EXPECT_TRUE(v.any());
    for (std::size_t i : probes)
        v.clear(i);
    EXPECT_TRUE(v.none());
}

TEST_P(BitVectorWidths, PopcountTracksSets)
{
    BitVector v(GetParam());
    std::size_t expected = 0;
    for (std::size_t i = 0; i < v.size(); i += 3) {
        v.set(i);
        ++expected;
    }
    EXPECT_EQ(v.popcount(), expected);
    // Setting a bit twice must not double-count.
    if (v.size() > 0) {
        v.set(0);
        EXPECT_EQ(v.popcount(), expected);
    }
}

TEST_P(BitVectorWidths, ForEachSetVisitsInOrder)
{
    BitVector v(GetParam());
    std::vector<std::size_t> want;
    for (std::size_t i = 1; i < v.size(); i *= 2) {
        v.set(i);
        want.push_back(i);
    }
    std::vector<std::size_t> got;
    v.forEachSet([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST_P(BitVectorWidths, ResetClearsEverything)
{
    BitVector v(GetParam());
    for (std::size_t i = 0; i < v.size(); ++i)
        v.set(i);
    v.reset();
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.popcount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidths,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 256));

TEST(BitVector, OutOfRangePanics)
{
    BitVector v(64);
    EXPECT_THROW(v.test(64), PanicError);
    EXPECT_THROW(v.set(64), PanicError);
    EXPECT_THROW(v.clear(1000), PanicError);
}

TEST(BitVector, EqualityComparesContentAndWidth)
{
    BitVector a(64), b(64), c(65);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    a.set(5);
    EXPECT_FALSE(a == b);
    b.set(5);
    EXPECT_TRUE(a == b);
}

TEST(BitVector, WordBoundaryBitsAreIndependent)
{
    BitVector v(128);
    v.set(63);
    v.set(64);
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_TRUE(v.test(64));
}

} // namespace
} // namespace rrm
