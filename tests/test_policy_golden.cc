/**
 * @file
 * Policy-equivalence golden tests: the write-policy refactor must not
 * change a single byte of any legacy scheme's output. Each legacy
 * scheme (Static-7-SETs, Static-3-SETs, RRM) runs a fixed seeded
 * configuration with observability on; the produced run record and
 * sampled time series are compared byte-for-byte against records
 * checked in under tests/golden/ that were generated *before* the
 * refactor.
 *
 * Volatile metadata lines (gitDescribe, timestampUtc) are stripped on
 * both sides, so the comparison is stable across commits and hosts;
 * everything else — config echo, results, the full stats tree — must
 * match exactly.
 *
 * Regenerate (only when an intentional behaviour change is made):
 *   RRM_UPDATE_GOLDEN=1 ./build/tests/test_policy_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "system/system.hh"

#ifndef RRM_GOLDEN_DIR
#error "RRM_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace rrm::sys
{
namespace
{

/** Drop the volatile metadata lines of a run record. */
std::string
normalize(const std::string &text)
{
    std::istringstream in(text);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"gitDescribe\"") != std::string::npos ||
            line.find("\"timestampUtc\"") != std::string::npos) {
            continue;
        }
        out += line;
        out += '\n';
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

bool
updateMode()
{
    const char *env = std::getenv("RRM_UPDATE_GOLDEN");
    return env && *env && std::string(env) != "0";
}

/**
 * The frozen configuration. The window spans one full selective-
 * refresh interval (40 ms at scale 50) past warmup so the RRM's
 * refresh, decay, and demotion paths all appear in the record.
 */
SystemConfig
goldenConfig(const std::string &scheme_name, const std::string &stem)
{
    SystemConfig cfg;
    cfg.workload = trace::workloadFromName("GemsFDTD");
    cfg.scheme = parseScheme(scheme_name);
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.060;
    cfg.warmupFraction = 0.2;
    cfg.seed = 7;
    cfg.obs.runRecordFile = stem + ".json";
    cfg.obs.sampleCsvFile = stem + ".csv";
    return cfg;
}

class PolicyGolden : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Pin the run-record timestamp (belt and braces: the
        // timestamp line is also stripped by normalize()).
        setenv("SOURCE_DATE_EPOCH", "0", /*overwrite=*/0);
    }

    void
    checkScheme(const std::string &scheme_name)
    {
        const std::string stem = "policy_golden." + scheme_name;
        {
            System system(goldenConfig(scheme_name, stem));
            system.run();
        }
        for (const char *ext : {".json", ".csv"}) {
            const std::string produced =
                normalize(readFile(stem + ext));
            const std::string golden_path = std::string(RRM_GOLDEN_DIR) +
                                            "/policy." + scheme_name +
                                            ext;
            if (updateMode()) {
                std::ofstream os(golden_path, std::ios::binary);
                ASSERT_TRUE(os.good())
                    << "cannot write " << golden_path;
                os << produced;
                continue;
            }
            const std::string golden = readFile(golden_path);
            EXPECT_EQ(produced, golden)
                << scheme_name << ext
                << ": output differs from the pre-refactor golden "
                   "record (policy refactor changed behaviour?)";
        }
    }
};

TEST_F(PolicyGolden, Static7SetsRunRecordIsByteIdentical)
{
    checkScheme("Static-7-SETs");
}

TEST_F(PolicyGolden, Static3SetsRunRecordIsByteIdentical)
{
    checkScheme("Static-3-SETs");
}

TEST_F(PolicyGolden, RrmRunRecordIsByteIdentical)
{
    checkScheme("RRM");
}

/** Guard against accidentally committing with update mode active. */
TEST_F(PolicyGolden, UpdateModeIsOff)
{
    EXPECT_FALSE(updateMode())
        << "RRM_UPDATE_GOLDEN is set; goldens were rewritten, not "
           "checked";
}

} // namespace
} // namespace rrm::sys
