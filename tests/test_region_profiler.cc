/**
 * @file
 * Tests for the Table III region write profiler.
 */

#include <gtest/gtest.h>

#include "system/region_profiler.hh"

namespace rrm::sys
{
namespace
{

RegionWriteProfiler
makeProfiler()
{
    // 64 regions of 4 KB; boundaries at 100 and 1000 ticks.
    return RegionWriteProfiler(4096, 64, {100, 1000});
}

TEST(RegionProfiler, CountsWritesAndRegions)
{
    auto p = makeProfiler();
    p.recordWrite(0, 10);
    p.recordWrite(4096, 20);
    p.recordWrite(64, 30);
    EXPECT_EQ(p.totalWrites(), 3u);
    EXPECT_EQ(p.writtenRegions(), 2u);
    EXPECT_EQ(p.neverWrittenRegions(), 62u);
}

TEST(RegionProfiler, IntervalsAreHistogrammed)
{
    auto p = makeProfiler();
    p.recordWrite(0, 0);
    p.recordWrite(0, 50);    // interval 50 -> bucket 0
    p.recordWrite(0, 550);   // interval 500 -> bucket 1
    p.recordWrite(0, 5000);  // interval 4450 -> bucket 2
    const auto &h = p.intervalHistogram();
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(RegionProfiler, FirstWritePerRegionHasNoInterval)
{
    auto p = makeProfiler();
    p.recordWrite(0, 10);
    p.recordWrite(4096, 10);
    EXPECT_EQ(p.intervalHistogram().total(), 0u);
}

TEST(RegionProfiler, WrittenOnceRegions)
{
    auto p = makeProfiler();
    p.recordWrite(0, 10);
    p.recordWrite(4096, 10);
    p.recordWrite(4096, 20);
    EXPECT_EQ(p.writtenOnceRegions(), 1u);
}

TEST(RegionProfiler, RegionsByMeanIntervalClassifiesRegions)
{
    auto p = makeProfiler();
    // Region 0: writes every 50 ticks (bucket 0).
    for (int i = 0; i <= 4; ++i)
        p.recordWrite(0, static_cast<Tick>(i) * 50);
    // Region 1: writes every 500 ticks (bucket 1).
    for (int i = 0; i <= 3; ++i)
        p.recordWrite(4096, static_cast<Tick>(i) * 500);
    // Region 2: single write: not classified.
    p.recordWrite(8192, 77);
    const auto buckets = p.regionsByMeanInterval();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].regions, 1u);
    EXPECT_EQ(buckets[0].writes, 5u);
    EXPECT_EQ(buckets[1].regions, 1u);
    EXPECT_EQ(buckets[1].writes, 4u);
    EXPECT_EQ(buckets[2].regions, 0u);
}

TEST(RegionProfiler, HotRegionFractionOnSkewedTraffic)
{
    auto p = makeProfiler();
    // Region 0 gets 90 writes, regions 1..9 get one each.
    for (int i = 0; i < 90; ++i)
        p.recordWrite(0, static_cast<Tick>(i));
    for (int r = 1; r <= 9; ++r)
        p.recordWrite(static_cast<Addr>(r) * 4096, 1000 + r);
    // 90% of the 99 writes (89.1 -> 90 needed) come from region 0
    // alone: 1 of 64 regions.
    EXPECT_NEAR(p.hotRegionFraction(0.9), 1.0 / 64.0, 1e-9);
    // 100% needs all ten written regions.
    EXPECT_NEAR(p.hotRegionFraction(1.0), 10.0 / 64.0, 1e-9);
}

TEST(RegionProfiler, HotFractionOfEmptyProfilerIsZero)
{
    auto p = makeProfiler();
    EXPECT_DOUBLE_EQ(p.hotRegionFraction(0.9), 0.0);
}

TEST(RegionProfiler, AggregatesInvariantUnderRegionInterleaving)
{
    // Determinism pin for the rrm-lint det-unordered-iter cleanup:
    // the profiler's exported aggregates (Table III rows, hot-region
    // concentration, written-once counts) must not depend on the
    // order distinct regions appear in the write stream. Two streams
    // with identical per-region timing but opposite region
    // interleaving must export identical numbers.
    auto a = makeProfiler();
    auto b = makeProfiler();
    const int regions = 8;
    for (int w = 0; w < 6; ++w) {
        for (int r = 0; r < regions; ++r) {
            const Tick t = static_cast<Tick>(100 * w + r);
            a.recordWrite(static_cast<Addr>(r) * 4096, t);
        }
        for (int r = regions - 1; r >= 0; --r) {
            const Tick t = static_cast<Tick>(100 * w + r);
            b.recordWrite(static_cast<Addr>(r) * 4096, t);
        }
    }
    EXPECT_EQ(a.totalWrites(), b.totalWrites());
    EXPECT_EQ(a.writtenRegions(), b.writtenRegions());
    EXPECT_EQ(a.writtenOnceRegions(), b.writtenOnceRegions());
    EXPECT_DOUBLE_EQ(a.hotRegionFraction(0.9),
                     b.hotRegionFraction(0.9));
    const auto ba = a.regionsByMeanInterval();
    const auto bb = b.regionsByMeanInterval();
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba[i].regions, bb[i].regions) << i;
        EXPECT_EQ(ba[i].writes, bb[i].writes) << i;
    }
    for (std::size_t i = 0; i < a.intervalHistogram().numBuckets();
         ++i)
        EXPECT_EQ(a.intervalHistogram().count(i),
                  b.intervalHistogram().count(i));
}

TEST(RegionProfiler, ResetClearsState)
{
    auto p = makeProfiler();
    p.recordWrite(0, 1);
    p.recordWrite(0, 2);
    p.reset();
    EXPECT_EQ(p.totalWrites(), 0u);
    EXPECT_EQ(p.writtenRegions(), 0u);
    EXPECT_EQ(p.intervalHistogram().total(), 0u);
}

} // namespace
} // namespace rrm::sys
