/**
 * @file
 * Randomized stress/property tests across modules: structural
 * invariants that must hold under arbitrary traffic, determinism
 * under replay, and the wear-spreading property of Start-Gap when
 * driven by a skewed write stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "memctrl/controller.hh"
#include "memctrl/start_gap.hh"
#include "pcm/wear_tracker.hh"
#include "rrm/region_monitor.hh"

namespace rrm
{
namespace
{

/**
 * RRM structural invariants under a random registration / decision /
 * interrupt storm:
 *  - a set short_retention bit implies its region is tracked;
 *  - fast write decisions occur only for set bits;
 *  - hot entries are always valid;
 *  - every emitted fast refresh targets a currently-set bit's block.
 */
TEST(RrmProperty, InvariantsHoldUnderRandomStorm)
{
    monitor::RrmConfig cfg;
    cfg.numSets = 16;
    cfg.assoc = 4;
    cfg.hotThreshold = 6;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    EventQueue queue;
    monitor::RegionMonitor rrm(cfg, queue);

    std::vector<monitor::RefreshRequest> refreshes;
    rrm.setRefreshCallback([&](const monitor::RefreshRequest &r) {
        refreshes.push_back(r);
    });

    Random rng(2024);
    const std::uint64_t regions = 256;
    for (int step = 0; step < 50000; ++step) {
        const Addr addr = rng.uniform(regions) * cfg.regionBytes +
                          rng.uniform(cfg.blocksPerRegion()) * 64;
        const int action = static_cast<int>(rng.uniform(100));
        if (action < 60) {
            rrm.registerLlcWrite(addr, rng.chance(0.6));
        } else if (action < 90) {
            const pcm::WriteMode mode = rrm.writeModeFor(addr);
            if (mode == cfg.fastMode) {
                EXPECT_TRUE(rrm.shortRetentionBit(addr));
                EXPECT_TRUE(rrm.isTracked(addr));
            }
        } else if (action < 97) {
            rrm.runDecayTick();
        } else {
            refreshes.clear();
            rrm.runSelectiveRefresh();
            for (const auto &r : refreshes) {
                EXPECT_EQ(r.mode, cfg.fastMode);
                EXPECT_TRUE(rrm.shortRetentionBit(r.blockAddr));
                EXPECT_TRUE(rrm.isHot(r.blockAddr));
            }
        }
        if (step % 5000 == 0) {
            // Hot entries must be a subset of valid entries, and
            // all live bits belong to hot-or-tracked regions.
            EXPECT_LE(rrm.hotEntryCount(), rrm.validEntryCount());
        }
    }
}

/** Identical seeds must replay identical RRM evolution. */
TEST(RrmProperty, DeterministicReplay)
{
    auto run = [](std::uint64_t seed) {
        monitor::RrmConfig cfg;
        cfg.numSets = 8;
        cfg.assoc = 4;
        cfg.hotThreshold = 4;
        cfg.timeScale = 1.0;
        cfg.decayStretch = 1.0;
        EventQueue queue;
        monitor::RegionMonitor rrm(cfg, queue);
        Random rng(seed);
        for (int i = 0; i < 20000; ++i) {
            rrm.registerLlcWrite(rng.uniform(128) * 4096 +
                                     rng.uniform(64) * 64,
                                 rng.chance(0.7));
            if (i % 500 == 0)
                rrm.runDecayTick();
        }
        return std::tuple(rrm.hotEntryCount(), rrm.validEntryCount(),
                          rrm.shortRetentionBlockCount());
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

/**
 * Controller liveness: any random request mix eventually drains, and
 * every accepted read's completion callback fires exactly once.
 */
TEST(ControllerProperty, RandomMixAlwaysDrains)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 12345ULL}) {
        EventQueue queue;
        memctrl::MemoryParams params;
        params.readQueueCap = 8;
        params.writeQueueCap = 8;
        params.refreshQueueCap = 4;
        params.writeHighWatermark = 6;
        params.writeLowWatermark = 2;
        memctrl::Controller ctrl(params, queue);
        Random rng(seed);

        std::map<int, int> completions;
        int accepted_reads = 0;
        for (int i = 0; i < 3000; ++i) {
            const Addr addr = rng.uniform(64_MiB / 64) * 64;
            const int kind = static_cast<int>(rng.uniform(10));
            if (kind < 5) {
                const int id = accepted_reads;
                if (ctrl.enqueueRead(addr, [&completions, id](Tick) {
                        ++completions[id];
                    })) {
                    ++accepted_reads;
                }
            } else if (kind < 9) {
                ctrl.enqueueWrite(
                    addr, pcm::allWriteModes[rng.uniform(5)]);
            } else {
                ctrl.enqueueRefresh(addr, pcm::WriteMode::Sets3);
            }
            if (i % 100 == 0)
                queue.run(queue.now() + 5_us);
        }
        queue.run();
        EXPECT_TRUE(ctrl.idle()) << "seed " << seed;
        EXPECT_EQ(completions.size(),
                  static_cast<std::size_t>(accepted_reads));
        for (const auto &[id, count] : completions)
            ASSERT_EQ(count, 1) << "read " << id << " seed " << seed;
    }
}

/**
 * Wear-leveling property: hammering a single 4 KB region through the
 * Start-Gap remapper spreads the wear the tracker sees across many
 * physical regions, while without remapping it lands on one.
 */
TEST(StartGapProperty, SpreadsTrackedWearOfAHotSpot)
{
    const std::uint64_t mem = 16_MiB;
    memctrl::StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 256; // 64 KB domains: fast rotation in-test
    p.gapWritePeriod = 4;
    memctrl::StartGapRemapper remap(mem, p);

    pcm::WearTracker leveled(mem, 4_KiB, 64);
    pcm::WearTracker raw(mem, 4_KiB, 64);

    Random rng(3);
    for (int i = 0; i < 200000; ++i) {
        // All writes to one 4 KB logical region.
        const Addr logical = rng.uniform(64) * 64;
        raw.recordBlockWrite(logical, pcm::WearCause::DemandWrite);
        leveled.recordBlockWrite(remap.remap(logical),
                                 pcm::WearCause::DemandWrite);
        remap.onWrite(logical);
    }

    EXPECT_EQ(raw.touchedRegions(), 1u);
    EXPECT_GT(leveled.touchedRegions(), 5u);
    // Max per-region wear drops by roughly the spreading factor.
    EXPECT_LT(leveled.maxRegionWear(), raw.maxRegionWear() / 2);
}

/**
 * Start-Gap must not disturb which rotation domain an address maps
 * to, so the wear it spreads stays within the hot domain.
 */
TEST(StartGapProperty, WearStaysWithinTheDomain)
{
    const std::uint64_t mem = 4_MiB;
    memctrl::StartGapParams p;
    p.lineBytes = 256;
    p.linesPerDomain = 1024; // 256 KB domains
    p.gapWritePeriod = 4;
    memctrl::StartGapRemapper remap(mem, p);
    const std::uint64_t domain_bytes = 256_KiB;

    Random rng(4);
    for (int i = 0; i < 50000; ++i) {
        const Addr logical = rng.uniform(domain_bytes);
        const Addr physical = remap.remap(logical);
        ASSERT_LT(physical, domain_bytes);
        remap.onWrite(logical);
    }
}

} // namespace
} // namespace rrm
