/**
 * @file
 * Perfetto (Chrome trace JSON) exporter tests: the exact bytes
 * produced for each branch of the track taxonomy — channel service
 * spans, queue counters, decay-epoch synthesis from sampler events,
 * and category instants — plus trailer idempotence and the
 * TraceSink::finishWriter() end-of-run path.
 *
 * The golden string is deliberately exact: timestamps are simulated
 * time, so the exporter's output is part of the determinism surface
 * (two seeded runs must export byte-identical timelines).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/units.hh"
#include "obs/perfetto.hh"
#include "obs/trace.hh"

namespace rrm::obs
{
namespace
{

TraceEvent
ev(Tick tick_us, TraceCategory cat, const char *name,
   TraceEvent::Field f0 = {}, TraceEvent::Field f1 = {},
   TraceEvent::Field f2 = {})
{
    return makeTraceEvent(tick_us * tickPerUs, cat, name, f0, f1, f2);
}

TEST(Perfetto, GoldenTimelineCoversEveryTrackType)
{
    std::ostringstream os;
    {
        PerfettoTraceWriter w(os);
        // Channel busy window: complete slice with issue-time duration.
        w.write(ev(1, TraceCategory::Queue, "readService",
                   {"channel", 0.0}, {"bank", 3.0},
                   {"dur", 2.0 * static_cast<double>(tickPerUs)}));
        // Queue occupancy counter series.
        w.write(ev(3, TraceCategory::Queue, "readEnq",
                   {"channel", 0.0}, {"readQ", 2.0}, {"writeQ", 1.0}));
        // Two sampler events bound one settled decay epoch.
        w.write(ev(4, TraceCategory::Sampler, "sample", {"epoch", 1.0}));
        w.write(ev(6, TraceCategory::Sampler, "sample", {"epoch", 2.0}));
        // Everything else: a thread-scoped instant per category.
        w.write(ev(7, TraceCategory::Refresh, "drainStart",
                   {"lines", 5.0}));
        w.finish();
    }
    EXPECT_EQ(
        os.str(),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"rrm-sim\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":100,"
        "\"args\":{\"name\":\"channel0 busy\"}},\n"
        "{\"name\":\"readService\",\"cat\":\"queue\",\"ph\":\"X\","
        "\"ts\":1,\"pid\":1,\"tid\":100,\"dur\":2,"
        "\"args\":{\"channel\":0,\"bank\":3,\"dur\":2000000}},\n"
        "{\"name\":\"ch0 queues\",\"cat\":\"queue\",\"ph\":\"C\","
        "\"ts\":3,\"pid\":1,\"args\":{\"readQ\":2,\"writeQ\":1}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":20,"
        "\"args\":{\"name\":\"decay epochs\"}},\n"
        "{\"name\":\"epoch\",\"cat\":\"sampler\",\"ph\":\"X\","
        "\"ts\":4,\"pid\":1,\"tid\":20,\"dur\":2,"
        "\"args\":{\"epoch\":2}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":11,"
        "\"args\":{\"name\":\"refresh\"}},\n"
        "{\"name\":\"drainStart\",\"cat\":\"refresh\",\"ph\":\"i\","
        "\"ts\":7,\"pid\":1,\"tid\":11,\"s\":\"t\","
        "\"args\":{\"lines\":5}}\n"
        "]}\n");
}

TEST(Perfetto, EmptyStreamIsStillValidJson)
{
    std::ostringstream os;
    {
        PerfettoTraceWriter w(os);
        w.finish();
    }
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(Perfetto, FinishIsIdempotentAndDropsLaterEvents)
{
    std::ostringstream os;
    PerfettoTraceWriter w(os);
    w.finish();
    const std::string after_first = os.str();
    w.finish(); // trailer must not repeat
    w.write(ev(1, TraceCategory::Refresh, "late"));
    EXPECT_EQ(os.str(), after_first);
}

TEST(Perfetto, DestructorFinishesUnfinishedStreams)
{
    std::ostringstream os;
    {
        PerfettoTraceWriter w(os);
        w.write(ev(2, TraceCategory::Fault, "retry", {"n", 1.0}));
    }
    const std::string text = os.str();
    EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");
}

TEST(Perfetto, SinkFinishWriterFlushesRingAndWritesTrailer)
{
    std::ostringstream os;
    TraceSink sink(/*capacity=*/16);
    // Buffered before a writer exists; attached writer gets the ring.
    sink.record(ev(5, TraceCategory::StartGap, "gapMove",
                   {"from", 1.0}, {"to", 2.0}));
    sink.setWriter(std::make_unique<PerfettoTraceWriter>(os));
    sink.finishWriter();
    const std::string text = os.str();
    EXPECT_NE(text.find("\"gapMove\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"startgap\""), std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");
}

} // namespace
} // namespace rrm::obs
