/**
 * @file
 * Mix-spec grammar tests (DESIGN.md section 17): round-trips of
 * every canned workload through mixSpecOf/tenantSpecOf and back,
 * spec expansion rules (counts, case-insensitive names, tenant
 * grouping), and the error contract — every malformed spec is
 * aggregated into one fatal() listing each violation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "trace/workload.hh"

namespace rrm::trace
{
namespace
{

// ---- Round-trips ----

TEST(WorkloadSpec, EveryCannedWorkloadRoundTripsThroughTheGrammar)
{
    for (const Workload &w : standardWorkloads()) {
        const std::string spec = mixSpecOf(w);
        Workload back;
        const std::vector<std::string> errors =
            parseWorkloadSpec(spec, tenantSpecOf(w), back);
        EXPECT_TRUE(errors.empty()) << w.name << ": " << spec;
        EXPECT_EQ(back.perCore, w.perCore) << w.name;
        EXPECT_EQ(back.numTenants(), w.numTenants()) << w.name;
    }
}

TEST(WorkloadSpec, CannedMixesKeepTheirTableViiAssignments)
{
    // The canned 4-core shapes stay available and unchanged next to
    // the N-core grammar.
    const Workload m1 = mix1Workload();
    ASSERT_EQ(m1.numCores(), workloadCores);
    EXPECT_EQ(mixSpecOf(m1), "mcf,bwaves,zeusmp,milc");
    const Workload m2 = mix2Workload();
    ASSERT_EQ(m2.numCores(), workloadCores);
    EXPECT_EQ(mixSpecOf(m2), "GemsFDTD,libquantum,lbm,leslie3d");
    EXPECT_FALSE(m1.multiTenant());
    EXPECT_FALSE(m2.multiTenant());
}

TEST(WorkloadSpec, MixSpecOfCollapsesConsecutiveRunsOnly)
{
    const Workload w = workloadFromSpec("lbm:2,GemsFDTD,lbm");
    EXPECT_EQ(w.name, "lbm:2,GemsFDTD,lbm");
    EXPECT_EQ(w.numCores(), 4u);
}

// ---- Expansion rules ----

TEST(WorkloadSpec, CountsExpandInOrder)
{
    const Workload w = workloadFromSpec("zeusmp,lbm,lbm,milc:2");
    const std::vector<Benchmark> want = {
        Benchmark::Zeusmp, Benchmark::Lbm, Benchmark::Lbm,
        Benchmark::Milc, Benchmark::Milc};
    EXPECT_EQ(w.perCore, want);
    EXPECT_EQ(w.name, "zeusmp,lbm:2,milc:2");
}

TEST(WorkloadSpec, BenchmarkNamesMatchCaseInsensitively)
{
    const Workload w = workloadFromSpec("LBM:2,gemsfdtd:2");
    EXPECT_EQ(w.perCore[0], Benchmark::Lbm);
    EXPECT_EQ(w.perCore[2], Benchmark::GemsFDTD);
    // The canonical name uses the table spelling, not the input's.
    EXPECT_EQ(w.name, "lbm:2,GemsFDTD:2");
}

TEST(WorkloadSpec, TenantGroupingAttachesPerCore)
{
    const Workload w =
        workloadFromSpec("lbm:2,GemsFDTD:2", "0,0,1,1");
    ASSERT_EQ(w.tenantOf, (std::vector<unsigned>{0, 0, 1, 1}));
    EXPECT_TRUE(w.multiTenant());
    EXPECT_EQ(w.numTenants(), 2u);
    EXPECT_EQ(tenantSpecOf(w), "0,0,1,1");
}

TEST(WorkloadSpec, OmittedTenantsMeanSingleTenant)
{
    const Workload w = workloadFromSpec("lbm:8");
    EXPECT_TRUE(w.tenantOf.empty());
    EXPECT_FALSE(w.multiTenant());
    EXPECT_EQ(tenantSpecOf(w), "");
}

// ---- Error contract ----

TEST(WorkloadSpec, UnknownBenchmarkIsOneNamedError)
{
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("nosuchbench", "", out);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("nosuchbench"), std::string::npos);
}

TEST(WorkloadSpec, ZeroCoreCountIsAnError)
{
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("lbm:0", "", out);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("zero cores"), std::string::npos);
}

TEST(WorkloadSpec, MalformedCountAndEmptyEntriesAreErrors)
{
    Workload out;
    EXPECT_EQ(parseWorkloadSpec("lbm:x", "", out).size(), 1u);
    EXPECT_EQ(parseWorkloadSpec("lbm,,milc", "", out).size(), 1u);
    EXPECT_EQ(parseWorkloadSpec("", "", out).size(), 1u);
}

TEST(WorkloadSpec, BadTenantSyntaxIsAnError)
{
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("lbm:2", "0,x", out);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("malformed id"), std::string::npos);
}

TEST(WorkloadSpec, TenantSizeMismatchNamesBothNumbers)
{
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("lbm:2,GemsFDTD:2", "0,0,1", out);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("3"), std::string::npos);
    EXPECT_NE(errors[0].find("4"), std::string::npos);
}

TEST(WorkloadSpec, NonContiguousTenantIdsAreAnError)
{
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("lbm:2", "0,2", out);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("contiguous"), std::string::npos);
}

TEST(WorkloadSpec, EveryViolationAggregatesIntoOneFatal)
{
    // Three independent problems, one parse, one throw listing all.
    Workload out;
    const std::vector<std::string> errors =
        parseWorkloadSpec("nosuch,lbm:0,milc:y", "", out);
    EXPECT_EQ(errors.size(), 3u);

    try {
        workloadFromSpec("nosuch,lbm:0,milc:y");
        FAIL() << "workloadFromSpec accepted a malformed spec";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("3 problem(s)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("nosuch"), std::string::npos);
        EXPECT_NE(msg.find("zero cores"), std::string::npos);
        EXPECT_NE(msg.find("malformed count"), std::string::npos);
    }
}

TEST(WorkloadSpec, TenantErrorsRideTheSameFatal)
{
    EXPECT_THROW(workloadFromSpec("lbm:2", "0,1,1"), FatalError);
    EXPECT_THROW(workloadFromSpec("lbm:2", "1,1"), FatalError);
}

} // namespace
} // namespace rrm::trace
