/**
 * @file
 * Sampler behaviour: column registration, stat-path resolution,
 * CSV/JSONL rendering, and — the part that matters for analysis —
 * alignment of periodic samples with the RRM decay epoch: a sample
 * scheduled on a decay tick must observe the post-decay state of
 * that tick (EventPriority::Sampler runs last within a tick).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "obs/sampler.hh"
#include "rrm/region_monitor.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

using namespace rrm;
using namespace rrm::obs;

TEST(StatValue, ResolvesEveryStatKind)
{
    stats::StatGroup g("g");
    stats::Scalar &s = g.addScalar("s", "scalar");
    s += 2.5;
    stats::VectorStat &v = g.addVector("v", "vector", {"a", "b"});
    v.add(0, 1.0);
    v.add(1, 2.0);
    stats::Formula &f =
        g.addFormula("f", "formula", [] { return 7.0; });
    stats::DistributionStat &d =
        g.addDistribution("d", "dist", {10});
    d.add(5);
    d.add(15, 2);

    EXPECT_DOUBLE_EQ(statValue(&s), 2.5);
    EXPECT_DOUBLE_EQ(statValue(&v), 3.0); // vector total
    EXPECT_DOUBLE_EQ(statValue(&f), 7.0);
    EXPECT_DOUBLE_EQ(statValue(&d), 2.0); // add() calls
    EXPECT_DOUBLE_EQ(statValue(nullptr), 0.0);
}

TEST(Sampler, RejectsZeroInterval)
{
    EventQueue queue;
    EXPECT_THROW(Sampler(queue, 0), PanicError);
}

TEST(Sampler, SamplesColumnsAtEveryInterval)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    double level = 0.0;
    sampler.addColumn("level", [&] { return level; });
    sampler.start();

    // The sampled value tracks the state at each sample tick.
    queue.schedule(50, [&] { level = 1.0; });
    queue.schedule(250, [&] { level = 2.0; });
    queue.run(400);

    ASSERT_EQ(sampler.rows().size(), 4u);
    EXPECT_EQ(sampler.rows()[0].tick, 100u);
    EXPECT_EQ(sampler.rows()[3].tick, 400u);
    EXPECT_DOUBLE_EQ(sampler.rows()[0].values[0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[1].values[0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[2].values[0], 2.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[3].values[0], 2.0);
}

TEST(Sampler, StopCancelsFutureSamplesButKeepsRows)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    sampler.addColumn("one", [] { return 1.0; });
    sampler.start();
    queue.run(200);
    EXPECT_EQ(sampler.rows().size(), 2u);
    sampler.stop();
    queue.run(500);
    EXPECT_EQ(sampler.rows().size(), 2u);
}

TEST(Sampler, ColumnsMustBeRegisteredBeforeSampling)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    sampler.addColumn("a", [] { return 0.0; });
    sampler.sampleNow();
    EXPECT_THROW(sampler.addColumn("b", [] { return 0.0; }),
                 PanicError);
}

TEST(Sampler, StatColumnsResolveLazilyEachSample)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    stats::StatGroup root("system");
    // Registered before the stat exists: find() resolves per sample.
    sampler.addStat(root, "mem.reads");
    sampler.sampleNow();

    stats::Scalar &reads =
        root.addChild("mem").addScalar("reads", "r");
    reads += 42;
    sampler.sampleNow();

    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(sampler.rows()[0].values[0], 0.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[1].values[0], 42.0);
    EXPECT_EQ(sampler.columnNames()[0], "mem.reads");
}

TEST(Sampler, CsvAndJsonlFormats)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    sampler.addColumn("hot", [] { return 3.0; });
    sampler.addColumn("frac", [] { return 0.5; });
    queue.schedule(secondsToTicks(0.5), [] {});
    queue.run();
    sampler.sampleNow(); // one row at t = 0.5 s

    std::ostringstream csv;
    sampler.writeCsv(csv);
    EXPECT_EQ(csv.str(), "time_s,hot,frac\n0.5,3,0.5\n");

    std::ostringstream jsonl;
    sampler.writeJsonl(jsonl);
    EXPECT_EQ(jsonl.str(),
              "{\"time_s\":0.5,\"hot\":3,\"frac\":0.5}\n");
}

TEST(Sampler, ReportsEachSampleToTheTraceSink)
{
    EventQueue queue;
    Sampler sampler(queue, 100);
    sampler.addColumn("x", [] { return 1.0; });
    TraceSink sink(16);
    sampler.setTraceSink(&sink);
    sampler.sampleNow();
    sampler.sampleNow();
    ASSERT_EQ(sink.recorded(), 2u);
    EXPECT_EQ(sink.buffered(1).category, TraceCategory::Sampler);
}

/**
 * Samples aligned with the RRM decay epoch observe post-decay state.
 *
 * With hot_threshold 2 at native time scale the decay tick is the
 * paper's 0.125 s. A region promoted by two dirty writes stays hot
 * through the first decay wrap (counter halved 2 -> 1) and is demoted
 * exactly at the second wrap, i.e. on decay tick 32. The sampler runs
 * at the same period, so its 32nd row lands on the same tick as the
 * demotion — and because samples run at EventPriority::Sampler (after
 * the decay tick's RefreshInterrupt priority), that row must already
 * see zero hot entries.
 */
TEST(Sampler, DecayEpochSamplesObservePostDecayState)
{
    monitor::RrmConfig cfg;
    cfg.hotThreshold = 2;
    const Tick decay = cfg.decayTickInterval();
    EXPECT_EQ(decay, secondsToTicks(0.125));

    EventQueue queue;
    monitor::RegionMonitor rrm(cfg, queue);
    Sampler sampler(queue, decay);
    sampler.addColumn("hotEntries",
                      [&] { return double(rrm.hotEntryCount()); });

    rrm.registerLlcWrite(0x1000, true);
    rrm.registerLlcWrite(0x1000, true);
    ASSERT_EQ(rrm.hotEntryCount(), 1u);

    rrm.start();
    sampler.start();
    queue.run(32 * decay);

    ASSERT_EQ(sampler.rows().size(), 32u);
    // Hot through the first wrap (row 16) and up to the last tick
    // before the second wrap...
    EXPECT_DOUBLE_EQ(sampler.rows()[15].values[0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[30].values[0], 1.0);
    // ...and the row sharing a tick with the demoting decay wrap
    // already reflects the demotion.
    EXPECT_EQ(sampler.rows()[31].tick, 32 * decay);
    EXPECT_DOUBLE_EQ(sampler.rows()[31].values[0], 0.0);
    EXPECT_EQ(rrm.hotEntryCount(), 0u);
}
