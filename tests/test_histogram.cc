/**
 * @file
 * Tests for BoundedHistogram and SampleStats.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.hh"
#include "common/logging.hh"

namespace rrm
{
namespace
{

TEST(BoundedHistogram, BucketCountIsBoundariesPlusOne)
{
    BoundedHistogram h({10, 20, 30});
    EXPECT_EQ(h.numBuckets(), 4u);
}

TEST(BoundedHistogram, ValuesLandInHalfOpenBuckets)
{
    BoundedHistogram h({10, 20});
    h.add(0);   // < 10
    h.add(9);   // < 10
    h.add(10);  // [10, 20)
    h.add(19);  // [10, 20)
    h.add(20);  // >= 20
    h.add(100); // >= 20
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(BoundedHistogram, WeightsAccumulate)
{
    BoundedHistogram h({5});
    h.add(1, 10);
    h.add(7, 3);
    EXPECT_EQ(h.count(0), 10u);
    EXPECT_EQ(h.count(1), 3u);
    EXPECT_EQ(h.total(), 13u);
}

TEST(BoundedHistogram, FractionsSumToOne)
{
    BoundedHistogram h({100, 200, 300});
    for (std::uint64_t v : {50u, 150u, 250u, 350u, 351u})
        h.add(v);
    double sum = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        sum += h.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BoundedHistogram, EmptyFractionIsZero)
{
    BoundedHistogram h({10});
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(BoundedHistogram, LabelsDescribeRanges)
{
    BoundedHistogram h({10, 20});
    EXPECT_EQ(h.bucketLabel(0), "< 10");
    EXPECT_EQ(h.bucketLabel(1), "[10, 20)");
    EXPECT_EQ(h.bucketLabel(2), ">= 20");
}

TEST(BoundedHistogram, ResetClearsCounts)
{
    BoundedHistogram h({10});
    h.add(3);
    h.add(30);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(BoundedHistogram, RequiresStrictlyIncreasingBoundaries)
{
    EXPECT_THROW(BoundedHistogram({}), PanicError);
    EXPECT_THROW(BoundedHistogram({10, 10}), PanicError);
    EXPECT_THROW(BoundedHistogram({20, 10}), PanicError);
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleStats, TracksMinMaxMeanSum)
{
    SampleStats s;
    for (double v : {4.0, 8.0, 6.0, 2.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(SampleStats, WelfordMatchesDirectVariance)
{
    SampleStats s;
    const double vals[] = {1.5, 2.5, 9.0, -3.0, 4.25, 0.0};
    double mean = 0;
    for (double v : vals) {
        s.add(v);
        mean += v;
    }
    mean /= 6.0;
    double var = 0;
    for (double v : vals)
        var += (v - mean) * (v - mean);
    var /= 6.0;
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(SampleStats, SingleSampleHasZeroVariance)
{
    SampleStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(SampleStats, ResetRestoresEmptyState)
{
    SampleStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

} // namespace
} // namespace rrm
