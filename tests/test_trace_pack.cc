/**
 * @file
 * Tests for the binary trace-pack format (trace/trace_pack.hh) and
 * the TraceSource replay modes (trace/source.hh): every mode must
 * yield a byte-identical record stream for the same (profile, seed),
 * including past the end of a replay prefix (fast-forward tail).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "trace/generator.hh"
#include "trace/source.hh"
#include "trace/trace_pack.hh"

namespace rrm::trace
{
namespace
{

/** Temp .rtp path unique to the current test. */
std::string
packPath(const std::string &stem)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string(::testing::TempDir()) + info->test_suite_name() +
           "." + info->name() + "." + stem + ".rtp";
}

void
expectSameRecord(const TraceRecord &a, const TraceRecord &b,
                 std::uint64_t i)
{
    ASSERT_EQ(a.addr, b.addr) << "record " << i;
    ASSERT_EQ(a.type, b.type) << "record " << i;
    ASSERT_EQ(a.gapInstructions, b.gapInstructions) << "record " << i;
}

TEST(TracePack, RoundTripsThroughFile)
{
    const BenchmarkProfile &profile = benchmarkProfile(Benchmark::Lbm);
    const std::uint64_t seed = 42;
    constexpr std::uint64_t n = 10000;

    const std::string path = packPath("roundtrip");
    {
        TraceGenerator gen(profile, seed);
        writeTracePack(path, std::string(profile.name), seed, gen, n);
    }

    TracePackReader reader(path);
    EXPECT_EQ(reader.recordCount(), n);
    EXPECT_EQ(reader.header().seed, seed);
    EXPECT_EQ(reader.header().profileName, std::string(profile.name));
    EXPECT_EQ(reader.header().footprintBytes, profile.footprintBytes());

    TraceGenerator ref(profile, seed);
    for (std::uint64_t i = 0; i < n; ++i)
        expectSameRecord(reader.record(i), ref.next(), i);

    std::remove(path.c_str());
}

TEST(TracePack, SourceFastForwardsPastPackEnd)
{
    const BenchmarkProfile &profile =
        benchmarkProfile(Benchmark::GemsFDTD);
    const std::uint64_t seed = 7;
    constexpr std::uint64_t packed = 2000;

    const std::string path = packPath("tail");
    {
        TraceGenerator gen(profile, seed);
        writeTracePack(path, std::string(profile.name), seed, gen,
                       packed);
    }

    // Read well past the pack: the source must splice back onto a
    // live generator with no seam.
    TraceSource src = TraceSource::pack(
        std::make_shared<TracePackReader>(path), profile, seed);
    TraceGenerator ref(profile, seed);
    for (std::uint64_t i = 0; i < 3 * packed; ++i)
        expectSameRecord(src.next(), ref.next(), i);

    std::remove(path.c_str());
}

TEST(TracePack, ReaderRejectsWrongSeed)
{
    const BenchmarkProfile &profile = benchmarkProfile(Benchmark::Milc);
    const std::string path = packPath("wrongseed");
    {
        TraceGenerator gen(profile, 3);
        writeTracePack(path, std::string(profile.name), 3, gen, 100);
    }
    auto reader = std::make_shared<TracePackReader>(path);
    EXPECT_THROW(TraceSource::pack(reader, profile, 4), FatalError);
    std::remove(path.c_str());
}

TEST(TracePack, ReaderRejectsWrongProfile)
{
    const BenchmarkProfile &milc = benchmarkProfile(Benchmark::Milc);
    const std::string path = packPath("wrongprofile");
    {
        TraceGenerator gen(milc, 3);
        writeTracePack(path, std::string(milc.name), 3, gen, 100);
    }
    auto reader = std::make_shared<TracePackReader>(path);
    EXPECT_THROW(
        TraceSource::pack(reader, benchmarkProfile(Benchmark::Lbm), 3),
        FatalError);
    std::remove(path.c_str());
}

TEST(TracePack, MissingFileIsFatal)
{
    EXPECT_THROW(TracePackReader("/nonexistent/dir/missing.rtp"),
                 FatalError);
}

TEST(TracePack, TruncatedFileIsFatal)
{
    const BenchmarkProfile &profile = benchmarkProfile(Benchmark::Lbm);
    const std::string path = packPath("truncated");
    {
        TraceGenerator gen(profile, 1);
        writeTracePack(path, std::string(profile.name), 1, gen, 1000);
    }
    // Chop the file short of the record count the header promises.
    // The reader must reject it before mapping, naming the file and
    // the expected/actual sizes.
    ASSERT_EQ(truncate(path.c_str(), 64 + 16 * 10), 0);
    try {
        TracePackReader reader(path);
        FAIL() << "truncated pack was accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("1000 records"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(64 + 16 * 10)),
                  std::string::npos)
            << msg;
    }
    std::remove(path.c_str());
}

TEST(TraceSource, MaterializedMatchesGenerate)
{
    const BenchmarkProfile &profile = benchmarkProfile(Benchmark::Lbm);
    const std::uint64_t seed = 11;
    constexpr std::uint64_t n = 200000; // > one 64Ki chunk

    TraceCache cache;
    TraceSource mat = TraceSource::materialized(cache.get(profile, seed));
    TraceSource ref = TraceSource::generate(profile, seed);
    for (std::uint64_t i = 0; i < n; ++i)
        expectSameRecord(mat.next(), ref.next(), i);
}

TEST(TraceSource, MaterializedFastForwardsPastCap)
{
    const BenchmarkProfile &profile =
        benchmarkProfile(Benchmark::Leslie3d);
    const std::uint64_t seed = 5;
    // Cap at exactly one chunk so the tail path triggers quickly.
    const std::uint64_t cap = MaterializedTrace::chunkRecords;

    TraceCache cache;
    TraceSource mat =
        TraceSource::materialized(cache.get(profile, seed, cap));
    TraceSource ref = TraceSource::generate(profile, seed);
    for (std::uint64_t i = 0; i < 3 * cap; ++i)
        expectSameRecord(mat.next(), ref.next(), i);
}

TEST(TraceSource, CacheSharesStreamsByProfileAndSeed)
{
    const BenchmarkProfile &lbm = benchmarkProfile(Benchmark::Lbm);
    const BenchmarkProfile &milc = benchmarkProfile(Benchmark::Milc);

    TraceCache cache;
    const auto a = cache.get(lbm, 1);
    const auto b = cache.get(lbm, 1);
    const auto c = cache.get(lbm, 2);
    const auto d = cache.get(milc, 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(cache.size(), 3u);
}

} // namespace
} // namespace rrm::trace
