/**
 * @file
 * TraceSink / TraceWriter / RRM_TRACE behaviour: ring buffering with
 * drop accounting, category filtering, writer formats, attach-time
 * flushing, and the macro's evaluation guarantees.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "obs/trace.hh"

using namespace rrm;
using namespace rrm::obs;

namespace
{

TraceEvent
event(Tick tick, double value)
{
    return makeTraceEvent(tick, TraceCategory::RrmLifecycle, "ev",
                          RRM_TF("v", value));
}

/** Writer that collects events into a vector. */
class CollectingWriter : public TraceWriter
{
  public:
    explicit CollectingWriter(std::vector<TraceEvent> &out) : out_(out) {}

    void write(const TraceEvent &ev) override { out_.push_back(ev); }

  private:
    std::vector<TraceEvent> &out_;
};

} // namespace

TEST(TraceEvent, CountsLeadingPopulatedFields)
{
    EXPECT_EQ(makeTraceEvent(0, TraceCategory::Refresh, "e").numFields(),
              0u);
    EXPECT_EQ(makeTraceEvent(0, TraceCategory::Refresh, "e",
                             RRM_TF("a", 1), RRM_TF("b", 2))
                  .numFields(),
              2u);
    EXPECT_EQ(makeTraceEvent(0, TraceCategory::Refresh, "e",
                             RRM_TF("a", 1), RRM_TF("b", 2),
                             RRM_TF("c", 3), RRM_TF("d", 4))
                  .numFields(),
              4u);
}

TEST(TraceCategories, NamesAndParsingRoundTrip)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::RrmLifecycle), "rrm");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Refresh), "refresh");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Queue), "queue");
    EXPECT_STREQ(traceCategoryName(TraceCategory::StartGap), "startgap");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Sampler), "sampler");

    EXPECT_EQ(parseTraceCategories("all"), traceAllCategories);
    EXPECT_EQ(parseTraceCategories("rrm"),
              traceBit(TraceCategory::RrmLifecycle));
    EXPECT_EQ(parseTraceCategories("rrm,queue"),
              traceBit(TraceCategory::RrmLifecycle) |
                  traceBit(TraceCategory::Queue));
    EXPECT_THROW(parseTraceCategories("bogus"), FatalError);
}

TEST(TraceSink, RingKeepsMostRecentAndCountsDrops)
{
    TraceSink sink(4);
    for (int i = 0; i < 10; ++i)
        sink.record(event(i, i));

    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    ASSERT_EQ(sink.bufferedCount(), 4u);
    // The four most recent events survive, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(sink.buffered(i).tick, 6u + i);
}

TEST(TraceSink, AttachingAWriterFlushesTheRingThenStreams)
{
    std::vector<TraceEvent> seen;
    TraceSink sink(8);
    sink.record(event(1, 1.0));
    sink.record(event(2, 2.0));
    EXPECT_EQ(sink.bufferedCount(), 2u);

    sink.setWriter(std::make_unique<CollectingWriter>(seen));
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(sink.bufferedCount(), 0u);

    // Subsequent events stream straight through without buffering.
    sink.record(event(3, 3.0));
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[2].tick, 3u);
    EXPECT_EQ(sink.bufferedCount(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, CategoryMaskGatesEnabled)
{
    TraceSink sink(8, traceBit(TraceCategory::Refresh));
    EXPECT_TRUE(sink.enabled(TraceCategory::Refresh));
    EXPECT_FALSE(sink.enabled(TraceCategory::Queue));
    EXPECT_FALSE(sink.enabled(TraceCategory::RrmLifecycle));

    sink.setCategoryMask(traceAllCategories);
    EXPECT_TRUE(sink.enabled(TraceCategory::Queue));
}

TEST(TraceMacro, SkipsDisabledCategoriesAndNullSinks)
{
    TraceSink sink(8, traceBit(TraceCategory::Refresh));
    int evaluations = 0;
    const auto costly = [&] {
        ++evaluations;
        return 1.0;
    };

    // Masked-off category: fields must not be evaluated.
    RRM_TRACE(&sink, 0, TraceCategory::Queue, "q",
              RRM_TF("v", costly()));
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(sink.recorded(), 0u);

    // Enabled category records and evaluates once.
    RRM_TRACE(&sink, 5, TraceCategory::Refresh, "r",
              RRM_TF("v", costly()));
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(sink.recorded(), 1u);
    EXPECT_EQ(sink.buffered(0).tick, 5u);

    // Null sink: nothing evaluated, nothing recorded.
    TraceSink *null_sink = nullptr;
    RRM_TRACE(null_sink, 0, TraceCategory::Refresh, "r",
              RRM_TF("v", costly()));
    EXPECT_EQ(evaluations, 1);
}

TEST(TraceWriters, TextFormat)
{
    std::ostringstream os;
    TextTraceWriter writer(os);
    writer.write(makeTraceEvent(42, TraceCategory::Refresh, "refresh",
                                RRM_TF("block", 4096),
                                RRM_TF("sets", 3)));
    EXPECT_EQ(os.str(), "42 [refresh] refresh block=4096 sets=3\n");
}

TEST(TraceWriters, JsonlFormat)
{
    std::ostringstream os;
    JsonlTraceWriter writer(os);
    writer.write(makeTraceEvent(42, TraceCategory::Queue, "writeEnq",
                                RRM_TF("channel", 1),
                                RRM_TF("writeQ", 7)));
    EXPECT_EQ(os.str(), "{\"tick\":42,\"cat\":\"queue\","
                        "\"event\":\"writeEnq\",\"channel\":1,"
                        "\"writeQ\":7}\n");
}

TEST(TraceSink, StreamingToAWriterNeverDrops)
{
    std::vector<TraceEvent> seen;
    TraceSink sink(2); // tiny ring would drop heavily if buffering
    sink.setWriter(std::make_unique<CollectingWriter>(seen));
    for (int i = 0; i < 100; ++i)
        sink.record(event(i, i));
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(sink.dropped(), 0u);
}
