/**
 * @file
 * Tests for the Region Retention Monitor — the paper's Section IV
 * mechanism: registration with the dirty-write streaming filter,
 * hot promotion at hot_threshold, write-mode decision, selective fast
 * refresh, decay/demotion, and eviction flushing.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "rrm/rrm_config.hh"
#include "rrm/region_monitor.hh"

namespace rrm::monitor
{
namespace
{

RrmConfig
smallConfig()
{
    RrmConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    cfg.hotThreshold = 4;
    cfg.timeScale = 1.0;
    cfg.decayStretch = 1.0;
    return cfg;
}

struct Fixture
{
    EventQueue queue;
    RrmConfig cfg;
    RegionMonitor rrm;
    std::vector<RefreshRequest> refreshes;

    explicit Fixture(RrmConfig c = smallConfig())
        : cfg(c), rrm(cfg, queue)
    {
        rrm.setRefreshCallback([this](const RefreshRequest &r) {
            refreshes.push_back(r);
        });
    }

    /** Register `n` dirty writes to the block at `addr`. */
    void
    dirtyWrites(Addr addr, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            rrm.registerLlcWrite(addr, true);
    }
};

TEST(RegionMonitor, CleanWritesAreFiltered)
{
    Fixture f;
    for (int i = 0; i < 100; ++i)
        f.rrm.registerLlcWrite(0x1000, false);
    EXPECT_FALSE(f.rrm.isTracked(0x1000));
}

TEST(RegionMonitor, DirtyWriteAllocatesEntry)
{
    Fixture f;
    f.rrm.registerLlcWrite(0x1000, true);
    EXPECT_TRUE(f.rrm.isTracked(0x1000));
    EXPECT_FALSE(f.rrm.isHot(0x1000));
    EXPECT_EQ(f.rrm.dirtyWriteCounter(0x1000), 1u);
}

TEST(RegionMonitor, EntryCoversWholeRegion)
{
    Fixture f;
    f.rrm.registerLlcWrite(0x1000, true);
    EXPECT_TRUE(f.rrm.isTracked(0x1FC0)); // same 4 KB region
    EXPECT_FALSE(f.rrm.isTracked(0x2000));
}

TEST(RegionMonitor, PromotionAtThreshold)
{
    Fixture f;
    f.dirtyWrites(0x1000, 3);
    EXPECT_FALSE(f.rrm.isHot(0x1000));
    f.dirtyWrites(0x1000, 1);
    EXPECT_TRUE(f.rrm.isHot(0x1000));
    EXPECT_EQ(f.rrm.hotEntryCount(), 1u);
}

TEST(RegionMonitor, CounterSaturatesAtThreshold)
{
    Fixture f;
    f.dirtyWrites(0x1000, 10);
    EXPECT_EQ(f.rrm.dirtyWriteCounter(0x1000), 4u);
}

TEST(RegionMonitor, VectorBitsOnlySetWhileHot)
{
    Fixture f;
    // Below threshold: no bits.
    f.dirtyWrites(0x1000, 3);
    EXPECT_FALSE(f.rrm.shortRetentionBit(0x1000));
    // The promoting write sets the bit of its own block.
    f.dirtyWrites(0x1040, 1);
    EXPECT_TRUE(f.rrm.isHot(0x1000));
    EXPECT_TRUE(f.rrm.shortRetentionBit(0x1040));
    EXPECT_FALSE(f.rrm.shortRetentionBit(0x1000));
    // Further writes while hot set more bits.
    f.dirtyWrites(0x1080, 1);
    EXPECT_TRUE(f.rrm.shortRetentionBit(0x1080));
    EXPECT_EQ(f.rrm.shortRetentionBlockCount(), 2u);
}

TEST(RegionMonitor, WriteModeFollowsVectorBit)
{
    Fixture f;
    EXPECT_EQ(f.rrm.writeModeFor(0x1000), f.cfg.slowMode);
    f.dirtyWrites(0x1040, 4); // promote via block 1
    EXPECT_EQ(f.rrm.writeModeFor(0x1040), f.cfg.fastMode);
    // Unwritten block of a hot region still defaults slow.
    EXPECT_EQ(f.rrm.writeModeFor(0x1000), f.cfg.slowMode);
    // Blocks outside any entry are slow.
    EXPECT_EQ(f.rrm.writeModeFor(0x9000), f.cfg.slowMode);
}

TEST(RegionMonitor, SelectiveRefreshEmitsFastPerSetBit)
{
    Fixture f;
    f.dirtyWrites(0x1040, 4);
    f.dirtyWrites(0x1080, 1);
    f.refreshes.clear();
    f.rrm.runSelectiveRefresh();
    ASSERT_EQ(f.refreshes.size(), 2u);
    for (const auto &r : f.refreshes) {
        EXPECT_EQ(r.mode, f.cfg.fastMode);
        EXPECT_FALSE(r.fromDecay);
    }
    EXPECT_EQ(f.refreshes[0].blockAddr, 0x1040u);
    EXPECT_EQ(f.refreshes[1].blockAddr, 0x1080u);
}

TEST(RegionMonitor, ColdEntriesNeverRefresh)
{
    Fixture f;
    f.dirtyWrites(0x1000, 3); // tracked but cold
    f.refreshes.clear();
    f.rrm.runSelectiveRefresh();
    EXPECT_TRUE(f.refreshes.empty());
}

TEST(RegionMonitor, DecayDemotesIdleHotEntry)
{
    Fixture f;
    f.dirtyWrites(0x1040, 4);
    ASSERT_TRUE(f.rrm.isHot(0x1000));
    f.refreshes.clear();
    // The promoting write left the counter saturated; the first wrap
    // halves it (still-hot path), the second demotes.
    for (unsigned t = 0; t < f.cfg.decayTicksPerInterval; ++t)
        f.rrm.runDecayTick();
    EXPECT_TRUE(f.rrm.isHot(0x1000));
    EXPECT_EQ(f.rrm.dirtyWriteCounter(0x1000), 2u);
    for (unsigned t = 0; t < f.cfg.decayTicksPerInterval; ++t)
        f.rrm.runDecayTick();
    EXPECT_FALSE(f.rrm.isHot(0x1000));
    // Demotion slow-refreshed the short-retention block.
    ASSERT_EQ(f.refreshes.size(), 1u);
    EXPECT_EQ(f.refreshes[0].blockAddr, 0x1040u);
    EXPECT_EQ(f.refreshes[0].mode, f.cfg.slowMode);
    EXPECT_TRUE(f.refreshes[0].fromDecay);
    EXPECT_EQ(f.rrm.shortRetentionBlockCount(), 0u);
}

TEST(RegionMonitor, SustainedTrafficKeepsEntryHot)
{
    Fixture f;
    f.dirtyWrites(0x1040, 4);
    for (int interval = 0; interval < 5; ++interval) {
        // Re-saturate the (halved) counter during each interval.
        f.dirtyWrites(0x1040, 4);
        for (unsigned t = 0; t < f.cfg.decayTicksPerInterval; ++t)
            f.rrm.runDecayTick();
        EXPECT_TRUE(f.rrm.isHot(0x1000)) << "interval " << interval;
    }
}

TEST(RegionMonitor, DemotedRegionCanRepromote)
{
    Fixture f;
    f.dirtyWrites(0x1040, 4);
    for (int i = 0; i < 2 * 16; ++i)
        f.rrm.runDecayTick();
    ASSERT_FALSE(f.rrm.isHot(0x1000));
    f.dirtyWrites(0x1040, 4);
    EXPECT_TRUE(f.rrm.isHot(0x1000));
}

TEST(RegionMonitor, LruEvictionWithinSet)
{
    Fixture f; // 4 sets x 2 ways; same set every 4 regions (16 KB)
    const Addr a = 0x0000, b = 0x10000, c = 0x20000;
    f.rrm.registerLlcWrite(a, true);
    f.rrm.registerLlcWrite(b, true);
    // Touch a so b is LRU.
    f.rrm.registerLlcWrite(a, true);
    f.rrm.registerLlcWrite(c, true);
    EXPECT_TRUE(f.rrm.isTracked(a));
    EXPECT_FALSE(f.rrm.isTracked(b));
    EXPECT_TRUE(f.rrm.isTracked(c));
}

TEST(RegionMonitor, EvictionFlushesLiveVectorBits)
{
    Fixture f;
    const Addr a = 0x0000, b = 0x10000, c = 0x20000;
    f.dirtyWrites(a + 0x40, 4); // hot with one bit
    f.rrm.registerLlcWrite(b, true);
    f.refreshes.clear();
    // Allocating c evicts LRU entry a (b was touched later? order:
    // a..., b, then c). a was last touched by its 4th write; b after.
    // So a is LRU: its bit must be slow-refreshed on eviction.
    f.rrm.registerLlcWrite(c, true);
    EXPECT_FALSE(f.rrm.isTracked(a));
    ASSERT_EQ(f.refreshes.size(), 1u);
    EXPECT_EQ(f.refreshes[0].blockAddr, a + 0x40);
    EXPECT_EQ(f.refreshes[0].mode, f.cfg.slowMode);
}

TEST(RegionMonitor, PeriodicTasksDriveRefreshAndDecay)
{
    RrmConfig cfg = smallConfig();
    cfg.timeScale = 100000.0; // 20 us interval: cheap to simulate
    cfg.decayStretch = 1.0;
    EventQueue queue;
    RegionMonitor rrm(cfg, queue);
    std::vector<RefreshRequest> refreshes;
    rrm.setRefreshCallback([&](const RefreshRequest &r) {
        refreshes.push_back(r);
    });
    rrm.start();
    for (unsigned i = 0; i < cfg.hotThreshold; ++i)
        rrm.registerLlcWrite(0x1040, true);
    ASSERT_TRUE(rrm.isHot(0x1000));
    // Run past two refresh interrupts: two fast refreshes, and decay
    // wraps demote the idle entry after the second interval.
    queue.run(cfg.shortRetentionInterval() * 2 + 1000);
    int fast = 0, slow = 0;
    for (const auto &r : refreshes) {
        fast += r.mode == cfg.fastMode;
        slow += r.mode == cfg.slowMode;
    }
    EXPECT_GE(fast, 1);
    EXPECT_GE(slow, 1);
    EXPECT_FALSE(rrm.isHot(0x1000));
    rrm.stop();
}

TEST(RegionMonitor, HigherThresholdPromotesFewerRegions)
{
    // Identical registration storms against two thresholds.
    auto run = [](unsigned threshold) {
        RrmConfig cfg;
        cfg.numSets = 64;
        cfg.assoc = 8;
        cfg.hotThreshold = threshold;
        cfg.timeScale = 1.0;
        cfg.decayStretch = 1.0;
        EventQueue queue;
        RegionMonitor rrm(cfg, queue);
        rrm::Random rng(5);
        rrm::ZipfSampler zipf(512, 0.9);
        for (int i = 0; i < 20000; ++i) {
            const Addr addr = zipf.sample(rng) * 4096 +
                              rng.uniform(64) * 64;
            rrm.registerLlcWrite(addr, true);
        }
        return rrm.hotEntryCount();
    };
    const auto hot8 = run(8);
    const auto hot16 = run(16);
    const auto hot64 = run(64);
    EXPECT_GT(hot8, hot16);
    EXPECT_GT(hot16, hot64);
    EXPECT_GT(hot64, 0u);
}

TEST(RrmConfig, Table8StorageOverheads)
{
    RrmConfig cfg; // 256 sets x 24 ways, 4 KB regions
    // 1 + 52 + 1 + 6 + 64 + 4 = 128 bits = 16 B per entry.
    EXPECT_EQ(cfg.tagBits(), 52u);
    EXPECT_EQ(cfg.counterBits(), 6u);
    EXPECT_EQ(cfg.storageBytes(), 96_KiB);

    cfg.numSets = 128;
    EXPECT_EQ(cfg.storageBytes(), 48_KiB);
    cfg.numSets = 512;
    EXPECT_EQ(cfg.storageBytes(), 192_KiB);
    cfg.numSets = 1024;
    EXPECT_EQ(cfg.storageBytes(), 384_KiB);
}

TEST(RrmConfig, CoverageMath)
{
    RrmConfig cfg;
    EXPECT_EQ(cfg.coverageBytes(), 24_MiB); // 4x of the 6 MB LLC
    EXPECT_EQ(cfg.blocksPerRegion(), 64u);
}

TEST(RrmConfig, IntervalsScaleWithTimeScale)
{
    RrmConfig native;
    native.timeScale = 1.0;
    native.decayStretch = 1.0;
    // 2.01 s retention - 0.01 s guard = 2 s.
    EXPECT_EQ(native.shortRetentionInterval(), 2_s);
    EXPECT_EQ(native.decayTickInterval(), 125_ms);

    RrmConfig scaled;
    scaled.timeScale = 50.0;
    scaled.decayStretch = 1.0;
    EXPECT_EQ(scaled.shortRetentionInterval(), 40_ms);
}

TEST(RrmConfig, AutoDecayStretchKicksInAtHighScale)
{
    RrmConfig cfg;
    cfg.timeScale = 1.0;
    EXPECT_DOUBLE_EQ(cfg.effectiveDecayStretch(), 1.0);
    cfg.timeScale = 64.0;
    EXPECT_DOUBLE_EQ(cfg.effectiveDecayStretch(), 4.0);
}

TEST(RrmConfig, ValidationCatchesBadConfigs)
{
    RrmConfig cfg;
    cfg.hotThreshold = 0;
    EXPECT_THROW(cfg.check(), FatalError);

    cfg = RrmConfig{};
    cfg.regionBytes = 100;
    EXPECT_THROW(cfg.check(), FatalError);

    cfg = RrmConfig{};
    cfg.fastMode = pcm::WriteMode::Sets7;
    EXPECT_THROW(cfg.check(), FatalError);

    cfg = RrmConfig{};
    cfg.timeScale = 0.5;
    EXPECT_THROW(cfg.check(), FatalError);
}

TEST(RrmConfig, CounterWidthGrowsWithThreshold)
{
    RrmConfig cfg;
    cfg.hotThreshold = 64;
    EXPECT_EQ(cfg.counterBits(), 7u);
    cfg.hotThreshold = 8;
    EXPECT_EQ(cfg.counterBits(), 6u); // paper floor of 6 bits
}

} // namespace
} // namespace rrm::monitor
