/**
 * @file
 * Tests for the Table VI scheme definitions.
 */

#include <gtest/gtest.h>

#include "system/scheme.hh"

namespace rrm::sys
{
namespace
{

TEST(Scheme, StaticNames)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets7).name(),
              "Static-7-SETs");
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets3).name(),
              "Static-3-SETs");
    EXPECT_EQ(Scheme::rrmScheme().name(), "RRM");
}

TEST(Scheme, GlobalRefreshModeFollowsScheme)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets4)
                  .globalRefreshMode(),
              pcm::WriteMode::Sets4);
    // The RRM scheme global-refreshes with slow (7-SETs) writes.
    EXPECT_EQ(Scheme::rrmScheme().globalRefreshMode(),
              pcm::WriteMode::Sets7);
}

TEST(Scheme, AllSchemesTable6Order)
{
    const auto all = allSchemes();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name(), "Static-7-SETs");
    EXPECT_EQ(all[1].name(), "Static-6-SETs");
    EXPECT_EQ(all[2].name(), "Static-5-SETs");
    EXPECT_EQ(all[3].name(), "Static-4-SETs");
    EXPECT_EQ(all[4].name(), "Static-3-SETs");
    EXPECT_EQ(all[5].name(), "RRM");
}

TEST(Scheme, StaticSchemesExcludeRrm)
{
    const auto stat = staticSchemes();
    ASSERT_EQ(stat.size(), 5u);
    for (const auto &s : stat)
        EXPECT_EQ(s.kind, SchemeKind::Static);
}

} // namespace
} // namespace rrm::sys
