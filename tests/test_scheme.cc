/**
 * @file
 * Tests for the Table VI scheme definitions.
 */

#include <gtest/gtest.h>

#include "system/scheme.hh"

namespace rrm::sys
{
namespace
{

TEST(Scheme, StaticNames)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets7).name(),
              "Static-7-SETs");
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets3).name(),
              "Static-3-SETs");
    EXPECT_EQ(Scheme::rrmScheme().name(), "RRM");
}

TEST(Scheme, GlobalRefreshModeFollowsScheme)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets4)
                  .globalRefreshMode(),
              pcm::WriteMode::Sets4);
    // The RRM scheme global-refreshes with slow (7-SETs) writes.
    EXPECT_EQ(Scheme::rrmScheme().globalRefreshMode(),
              pcm::WriteMode::Sets7);
}

TEST(Scheme, AllPaperSchemesTable6Order)
{
    const auto all = allPaperSchemes();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name(), "Static-7-SETs");
    EXPECT_EQ(all[1].name(), "Static-6-SETs");
    EXPECT_EQ(all[2].name(), "Static-5-SETs");
    EXPECT_EQ(all[3].name(), "Static-4-SETs");
    EXPECT_EQ(all[4].name(), "Static-3-SETs");
    EXPECT_EQ(all[5].name(), "RRM");
}

TEST(Scheme, StaticSchemesExcludeRrm)
{
    const auto stat = staticSchemes();
    ASSERT_EQ(stat.size(), 5u);
    for (const auto &s : stat)
        EXPECT_EQ(s.kind, SchemeKind::Static);
}

TEST(Scheme, ParseSchemeRoundTripsEveryPaperScheme)
{
    for (const Scheme &s : allPaperSchemes())
        EXPECT_EQ(parseScheme(s.name()), s);
}

TEST(Scheme, ParseSchemeRejectsUnknownNames)
{
    EXPECT_THROW(parseScheme("Static-8-SETs"), FatalError);
    EXPECT_THROW(parseScheme("rrm"), FatalError);
    EXPECT_THROW(parseScheme(""), FatalError);
}

TEST(Scheme, EqualityIgnoresStaticModeForRrm)
{
    Scheme a = Scheme::rrmScheme();
    Scheme b = Scheme::rrmScheme();
    b.staticMode = pcm::WriteMode::Sets3;
    EXPECT_EQ(a, b);
    EXPECT_NE(Scheme::staticScheme(pcm::WriteMode::Sets3),
              Scheme::staticScheme(pcm::WriteMode::Sets4));
}

} // namespace
} // namespace rrm::sys
