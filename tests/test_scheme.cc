/**
 * @file
 * Tests for the Table VI scheme definitions.
 */

#include <gtest/gtest.h>

#include "system/scheme.hh"

namespace rrm::sys
{
namespace
{

TEST(Scheme, StaticNames)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets7).name(),
              "Static-7-SETs");
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets3).name(),
              "Static-3-SETs");
    EXPECT_EQ(Scheme::rrmScheme().name(), "RRM");
    EXPECT_EQ(Scheme::adaptiveRrmScheme().name(), "Adaptive-RRM");
}

TEST(Scheme, GlobalRefreshModeFollowsScheme)
{
    EXPECT_EQ(Scheme::staticScheme(pcm::WriteMode::Sets4)
                  .globalRefreshMode(),
              pcm::WriteMode::Sets4);
    // The RRM schemes global-refresh with slow (7-SETs) writes.
    EXPECT_EQ(Scheme::rrmScheme().globalRefreshMode(),
              pcm::WriteMode::Sets7);
    EXPECT_EQ(Scheme::adaptiveRrmScheme().globalRefreshMode(),
              pcm::WriteMode::Sets7);
}

TEST(Scheme, AllPaperSchemesTable6Order)
{
    const auto all = allPaperSchemes();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name(), "Static-7-SETs");
    EXPECT_EQ(all[1].name(), "Static-6-SETs");
    EXPECT_EQ(all[2].name(), "Static-5-SETs");
    EXPECT_EQ(all[3].name(), "Static-4-SETs");
    EXPECT_EQ(all[4].name(), "Static-3-SETs");
    EXPECT_EQ(all[5].name(), "RRM");
}

TEST(Scheme, StaticSchemesExcludeRrm)
{
    const auto stat = staticSchemes();
    ASSERT_EQ(stat.size(), 5u);
    for (const auto &s : stat)
        // rrm-lint: allow(layer-scheme-dispatch) factory metadata test
        EXPECT_EQ(s.kind, SchemeKind::Static);
}

TEST(Scheme, AllSchemesAppendAdaptiveRrmAndRrmQos)
{
    const auto all = allSchemes();
    ASSERT_EQ(all.size(), allPaperSchemes().size() + 2);
    EXPECT_EQ(all[all.size() - 2].name(), "Adaptive-RRM");
    EXPECT_EQ(all.back().name(), "RRM-QoS");
}

TEST(Scheme, RrmQosSchemeProperties)
{
    const Scheme s = Scheme::rrmQosScheme();
    EXPECT_EQ(s.name(), "RRM-QoS");
    EXPECT_TRUE(s.usesMonitor());
    EXPECT_EQ(s.globalRefreshMode(), pcm::WriteMode::Sets7);
    EXPECT_EQ(parseScheme("rrm-qos"), s);
}

TEST(Scheme, ParseSchemeRoundTripsEveryScheme)
{
    for (const Scheme &s : allSchemes())
        EXPECT_EQ(parseScheme(s.name()), s);
}

TEST(Scheme, ParseSchemeIgnoresCase)
{
    EXPECT_EQ(parseScheme("rrm"), Scheme::rrmScheme());
    EXPECT_EQ(parseScheme("adaptive-rrm"), Scheme::adaptiveRrmScheme());
    EXPECT_EQ(parseScheme("STATIC-5-sets"),
              Scheme::staticScheme(pcm::WriteMode::Sets5));
}

TEST(Scheme, ParseSchemeRejectsUnknownNames)
{
    EXPECT_THROW(parseScheme("Static-8-SETs"), FatalError);
    EXPECT_THROW(parseScheme(""), FatalError);
}

TEST(Scheme, ParseSchemeErrorListsEveryValidName)
{
    try {
        parseScheme("nonsense");
        FAIL() << "parseScheme accepted an unknown name";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        for (const Scheme &s : allSchemes()) {
            EXPECT_NE(msg.find(s.name()), std::string::npos)
                << "error message misses valid name " << s.name();
        }
    }
}

TEST(Scheme, EqualityIgnoresStaticModeForRrm)
{
    Scheme a = Scheme::rrmScheme();
    Scheme b = Scheme::rrmScheme();
    b.staticMode = pcm::WriteMode::Sets3;
    EXPECT_EQ(a, b);
    EXPECT_NE(Scheme::staticScheme(pcm::WriteMode::Sets3),
              Scheme::staticScheme(pcm::WriteMode::Sets4));
}

} // namespace
} // namespace rrm::sys
