/**
 * @file
 * Tests for the logging / error-reporting primitives.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace rrm
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalMessageIsPrefixedAndConcatenated)
{
    try {
        fatal("value ", 42, " is ", "bad");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value 42 is bad");
    }
}

TEST(Logging, PanicMessageIsPrefixed)
{
    try {
        panic("x=", 1.5);
        FAIL() << "panic() returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: x=1.5");
    }
}

TEST(Logging, WarnIncrementsCounter)
{
    log_detail::setQuiet(true);
    const auto before = log_detail::warnCount();
    warn("something odd: ", 7);
    warn("again");
    EXPECT_EQ(log_detail::warnCount(), before + 2);
    log_detail::setQuiet(false);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(RRM_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(RRM_ASSERT(false, "expected failure"), PanicError);
}

TEST(Logging, AssertMessageNamesCondition)
{
    try {
        RRM_ASSERT(2 < 1, "two below one");
        FAIL() << "assert passed";
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 < 1"), std::string::npos);
        EXPECT_NE(msg.find("two below one"), std::string::npos);
    }
}

} // namespace
} // namespace rrm
