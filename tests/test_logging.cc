/**
 * @file
 * Tests for the logging / error-reporting primitives.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace rrm
{
namespace
{

/**
 * Captures warn()/inform() output for one test and restores the
 * default sink, severity filter, and warn-once state afterwards.
 */
class CapturedLog
{
  public:
    CapturedLog()
    {
        log_detail::setLogSink(
            [this](LogSeverity sev, const std::string &msg) {
                messages_.emplace_back(sev, msg);
            });
    }

    ~CapturedLog()
    {
        log_detail::setLogSink({});
        log_detail::setMinSeverity(LogSeverity::Info);
        log_detail::resetWarnOnce();
    }

    const std::vector<std::pair<LogSeverity, std::string>> &
    messages() const
    {
        return messages_;
    }

  private:
    std::vector<std::pair<LogSeverity, std::string>> messages_;
};

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalMessageIsPrefixedAndConcatenated)
{
    try {
        fatal("value ", 42, " is ", "bad");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value 42 is bad");
    }
}

TEST(Logging, PanicMessageIsPrefixed)
{
    try {
        panic("x=", 1.5);
        FAIL() << "panic() returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: x=1.5");
    }
}

TEST(Logging, WarnIncrementsCounter)
{
    log_detail::setQuiet(true);
    const auto before = log_detail::warnCount();
    warn("something odd: ", 7);
    warn("again");
    EXPECT_EQ(log_detail::warnCount(), before + 2);
    log_detail::setQuiet(false);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(RRM_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(RRM_ASSERT(false, "expected failure"), PanicError);
}

TEST(Logging, AssertMessageNamesCondition)
{
    try {
        RRM_ASSERT(2 < 1, "two below one");
        FAIL() << "assert passed";
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 < 1"), std::string::npos);
        EXPECT_NE(msg.find("two below one"), std::string::npos);
    }
}

TEST(Logging, SinkReceivesWarnAndInform)
{
    CapturedLog log;
    inform("status ", 1);
    warn("trouble ", 2);

    ASSERT_EQ(log.messages().size(), 2u);
    EXPECT_EQ(log.messages()[0].first, LogSeverity::Info);
    EXPECT_EQ(log.messages()[0].second, "status 1");
    EXPECT_EQ(log.messages()[1].first, LogSeverity::Warn);
    EXPECT_EQ(log.messages()[1].second, "trouble 2");
}

TEST(Logging, MinSeverityFiltersBeforeTheSink)
{
    CapturedLog log;
    log_detail::setMinSeverity(LogSeverity::Warn);
    const auto before = log_detail::warnCount();
    inform("dropped");
    warn("kept");

    ASSERT_EQ(log.messages().size(), 1u);
    EXPECT_EQ(log.messages()[0].second, "kept");
    // The counter still counts warns even when they are filtered out.
    log_detail::setQuiet(true);
    warn("quiet but counted");
    log_detail::setQuiet(false);
    EXPECT_EQ(log_detail::warnCount(), before + 2);
}

TEST(Logging, WarnOnceEmitsOncePerCategory)
{
    CapturedLog log;
    warn_once("featureX", "approximate model");
    warn_once("featureX", "approximate model");
    warn_once("featureY", "other note");

    ASSERT_EQ(log.messages().size(), 2u);
    EXPECT_EQ(log.messages()[0].second, "featureX: approximate model");
    EXPECT_EQ(log.messages()[1].second, "featureY: other note");
}

TEST(Logging, ResetWarnOnceForgetsCategories)
{
    CapturedLog log;
    warn_once("cat", "first");
    log_detail::resetWarnOnce();
    warn_once("cat", "second");
    ASSERT_EQ(log.messages().size(), 2u);
    EXPECT_EQ(log.messages()[1].second, "cat: second");
}

TEST(Logging, EmptySinkRestoresDefaultWithoutCrashing)
{
    log_detail::setLogSink({});
    log_detail::setQuiet(true);
    EXPECT_NO_THROW(warn("to the default sink"));
    log_detail::setQuiet(false);
}

} // namespace
} // namespace rrm
