/**
 * @file
 * Tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace rrm
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(300, [&] { order.push_back(3); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(200, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueue, PriorityBreaksTiesWithinTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(50, [&] { order.push_back(2); },
               EventPriority::Default);
    q.schedule(50, [&] { order.push_back(1); },
               EventPriority::RefreshInterrupt);
    q.schedule(50, [&] { order.push_back(3); }, EventPriority::CpuTick);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTickAndPriority)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAndAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.schedule(200, [&] { ++fired; });
    EXPECT_EQ(q.run(150), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 150u);
    EXPECT_EQ(q.run(200), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.run(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(10, EventQueue::Callback{}), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    const auto id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.cancel(id);
    EXPECT_EQ(q.run(), 1u);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoOp)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(12345);
    EXPECT_EQ(q.run(), 1u);
}

TEST(EventQueue, ReentrantSchedulingFromCallback)
{
    EventQueue q;
    std::vector<Tick> fire_times;
    q.schedule(10, [&] {
        fire_times.push_back(q.now());
        q.schedule(15, [&] { fire_times.push_back(q.now()); });
        // Same-tick reentrant scheduling runs later this tick.
        q.schedule(10, [&] { fire_times.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fire_times, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsExecuted(), 10u);
}

TEST(EventQueue, SizeTracksPending)
{
    EventQueue q;
    const auto a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(PeriodicTask, FiresAtFixedIntervals)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 100, 50, [&] { fires.push_back(q.now()); });
    q.run(375);
    EXPECT_EQ(fires, (std::vector<Tick>{50, 150, 250, 350}));
    EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, StopCancelsFutureFirings)
{
    EventQueue q;
    int fires = 0;
    PeriodicTask task(q, 100, 100, [&] { ++fires; });
    q.run(250);
    task.stop();
    q.run(1000);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromInsideCallback)
{
    EventQueue q;
    int fires = 0;
    PeriodicTask task(q, 10, 10, [&] {
        ++fires;
        if (fires == 3)
            task.stop();
    });
    q.run(1000);
    EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, DestructorStops)
{
    EventQueue q;
    int fires = 0;
    {
        PeriodicTask task(q, 10, 10, [&] { ++fires; });
        q.run(25);
    }
    q.run(1000);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTask, ZeroPeriodPanics)
{
    EventQueue q;
    EXPECT_THROW(PeriodicTask(q, 0, 10, [] {}), PanicError);
}

} // namespace
} // namespace rrm
