/**
 * @file
 * Tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace rrm
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(300, [&] { order.push_back(3); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(200, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueue, PriorityBreaksTiesWithinTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(50, [&] { order.push_back(2); },
               EventPriority::Default);
    q.schedule(50, [&] { order.push_back(1); },
               EventPriority::RefreshInterrupt);
    q.schedule(50, [&] { order.push_back(3); }, EventPriority::CpuTick);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTickAndPriority)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAndAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.schedule(200, [&] { ++fired; });
    EXPECT_EQ(q.run(150), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 150u);
    EXPECT_EQ(q.run(200), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.run(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(10, EventQueue::Callback{}), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    const auto id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.cancel(id);
    EXPECT_EQ(q.run(), 1u);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownHandleIsNoOp)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(EventHandle{});                // never issued
    q.cancel(EventHandle{12345u, 7u});      // slot outside the arena
    EXPECT_EQ(q.run(), 1u);
}

TEST(EventQueue, CancelStaleHandleIsNoOp)
{
    EventQueue q;
    int fired = 0;
    const EventHandle h = q.schedule(10, [&] { ++fired; });
    EXPECT_EQ(q.run(), 1u);
    q.cancel(h); // already executed: generation check rejects it
    q.schedule(20, [&] { ++fired; }); // likely reuses the slot
    EXPECT_EQ(q.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ReentrantSchedulingFromCallback)
{
    EventQueue q;
    std::vector<Tick> fire_times;
    q.schedule(10, [&] {
        fire_times.push_back(q.now());
        q.schedule(15, [&] { fire_times.push_back(q.now()); });
        // Same-tick reentrant scheduling runs later this tick.
        q.schedule(10, [&] { fire_times.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fire_times, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsExecuted(), 10u);
}

TEST(EventQueue, SizeTracksPending)
{
    EventQueue q;
    const auto a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

// ---- Calendar-queue geometry boundaries ----
//
// The kernel hashes near events into 2^14-tick buckets on a
// 2048-bucket wheel (span 2^25 = 33554432 ticks); farther events sit
// in an overflow heap until the wheel rotates under them. These tests
// straddle each boundary and pin the (tick, priority, sequence) order
// across the structures.

constexpr Tick kBucket = Tick(1) << 14;
constexpr Tick kSpan = kBucket * 2048;

TEST(EventQueue, OrderAcrossBucketBoundary)
{
    EventQueue q;
    std::vector<int> order;
    // Last tick of bucket 0 and first tick of bucket 1, scheduled in
    // reverse.
    q.schedule(kBucket, [&] { order.push_back(2); });
    q.schedule(kBucket - 1, [&] { order.push_back(1); });
    q.schedule(kBucket + 1, [&] { order.push_back(3); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinOneBucketDifferentTicks)
{
    EventQueue q;
    std::vector<int> order;
    // Same bucket, distinct ticks, inserted out of order: the bucket
    // sort must restore tick order.
    q.schedule(kBucket / 2, [&] { order.push_back(2); });
    q.schedule(kBucket / 4, [&] { order.push_back(1); });
    q.schedule(kBucket - 1, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, OrderAcrossWheelHorizon)
{
    EventQueue q;
    std::vector<int> order;
    // One event beyond the wheel span (overflow heap) and one inside;
    // the overflow event must run second, after the wheel rotates.
    q.schedule(kSpan + 10, [&] { order.push_back(2); });
    q.schedule(kSpan - 10, [&] { order.push_back(1); });
    q.schedule(2 * kSpan + 5, [&] { order.push_back(3); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 2 * kSpan + 5);
}

TEST(EventQueue, TieOrderSpansHorizonStructures)
{
    EventQueue q;
    std::vector<int> order;
    // Two events at the SAME far tick: the first lands in the
    // overflow heap; after it migrates, sequence order must still
    // break the tie in scheduling order.
    const Tick far = kSpan + 123;
    q.schedule(far, [&] { order.push_back(1); });
    q.schedule(far, [&] { order.push_back(2); });
    // A near event whose execution brings `far` within the horizon.
    q.schedule(far - kSpan / 2, [&] { order.push_back(0); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, PriorityBeatsSequenceAcrossHorizon)
{
    EventQueue q;
    std::vector<int> order;
    const Tick far = kSpan + kBucket;
    q.schedule(far, [&] { order.push_back(2); },
               EventPriority::Default);
    q.schedule(far, [&] { order.push_back(1); },
               EventPriority::RefreshInterrupt);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EmptyWheelJumpsStraightToFarEvent)
{
    EventQueue q;
    bool fired = false;
    q.schedule(5 * kSpan + 7, [&] { fired = true; });
    EXPECT_EQ(q.run(), 1u);
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), 5 * kSpan + 7);
}

TEST(EventQueue, ReentrantSchedulingAcrossBoundaries)
{
    EventQueue q;
    std::vector<Tick> fired;
    // Each callback schedules the next one a full span ahead: the
    // frontier must keep migrating overflow events indefinitely.
    std::function<void(int)> chain = [&](int depth) {
        fired.push_back(q.now());
        if (depth < 4) {
            q.schedule(q.now() + kSpan + 1,
                       [&chain, depth] { chain(depth + 1); });
        }
    };
    q.schedule(1, [&chain] { chain(0); });
    EXPECT_EQ(q.run(), 5u);
    ASSERT_EQ(fired.size(), 5u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], fired[i - 1] + kSpan + 1);
}

TEST(EventQueue, CancelledFarEventNeverFires)
{
    EventQueue q;
    bool fired = false;
    const auto h = q.schedule(kSpan + 99, [&] { fired = true; });
    q.schedule(10, [] {});
    q.cancel(h);
    EXPECT_EQ(q.run(), 1u);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.now(), 10u);
}

TEST(PeriodicTask, FiresAtFixedIntervals)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 100, 50, [&] { fires.push_back(q.now()); });
    q.run(375);
    EXPECT_EQ(fires, (std::vector<Tick>{50, 150, 250, 350}));
    EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, StopCancelsFutureFirings)
{
    EventQueue q;
    int fires = 0;
    PeriodicTask task(q, 100, 100, [&] { ++fires; });
    q.run(250);
    task.stop();
    q.run(1000);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromInsideCallback)
{
    EventQueue q;
    int fires = 0;
    PeriodicTask task(q, 10, 10, [&] {
        ++fires;
        if (fires == 3)
            task.stop();
    });
    q.run(1000);
    EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, DestructorStops)
{
    EventQueue q;
    int fires = 0;
    {
        PeriodicTask task(q, 10, 10, [&] { ++fires; });
        q.run(25);
    }
    q.run(1000);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTask, ZeroPeriodPanics)
{
    EventQueue q;
    EXPECT_THROW(PeriodicTask(q, 0, 10, [] {}), PanicError);
}

} // namespace
} // namespace rrm
