/**
 * @file
 * Machine-readable stat export: JSON/CSV golden files over a
 * hand-built stats tree, the deterministic number/escape/quote
 * helpers, JsonWriter structure management, and the end-to-end
 * guarantee the exporters exist for — two identically seeded
 * simulations export byte-identical stats JSON.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/stat_writers.hh"
#include "system/system.hh"

using namespace rrm;
using namespace rrm::obs;

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\r"), "a\\nb\\tc\\r");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonNumber, IntegersFractionsAndNonFinite)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
    EXPECT_EQ(jsonNumber(-1.0 / 0.0), "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    // At 2^53 and beyond integrality is no longer trustworthy: %g.
    EXPECT_EQ(jsonNumber(9007199254740992.0), "9007199254740992");
}

TEST(CsvQuote, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(csvQuote("plain.path"), "plain.path");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("two\nlines"), "\"two\nlines\"");
}

TEST(JsonWriter, NestedStructuresWithCommaManagement)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("a", 1);
    json.key("b");
    json.beginArray();
    json.value(1.5);
    json.value("s");
    json.value(true);
    json.null();
    json.endArray();
    json.key("c");
    json.beginObject();
    json.endObject();
    json.endObject();
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[1.5,\"s\",true,null],\"c\":{}}");
}

TEST(JsonWriter, PrettyModeIndents)
{
    std::ostringstream os;
    JsonWriter json(os, true);
    json.beginObject();
    json.field("a", 1);
    json.endObject();
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, MisuseIsAProgrammingError)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    EXPECT_THROW(json.value(1.0), PanicError); // value without key
    EXPECT_THROW(json.endArray(), PanicError); // wrong frame type
}

namespace
{

/** A small tree exercising every stat kind plus nesting. */
void
buildTree(stats::StatGroup &root)
{
    root.addScalar("reads", "read count") += 10;
    stats::StatGroup &child = root.addChild("pcm");
    child.addScalar("writes", "write count") += 4;
    child
        .addVector("perBank", "per-bank writes", {"b0", "b1"})
        .add(1, 3.0);
    stats::Scalar &fast = child.addScalar("fast", "fast writes");
    fast += 1;
    child.addFormula("fastFrac", "fast fraction",
                     [&fast] { return fast.value() / 4.0; });
    child.addDistribution("lat", "latency", {100}).add(50);
}

} // namespace

TEST(StatWriters, JsonGoldenFile)
{
    stats::StatGroup root("system");
    buildTree(root);

    std::ostringstream os;
    writeStatsJson(os, root, /*pretty=*/false);
    EXPECT_EQ(os.str(),
              "{\"reads\":10,"
              "\"pcm\":{\"writes\":4,"
              "\"perBank\":{\"bins\":{\"b0\":0,\"b1\":3},\"total\":3},"
              "\"fast\":1,"
              "\"fastFrac\":0.25,"
              "\"lat\":{\"samples\":1,\"mean\":50,"
              "\"buckets\":{\"< 100\":1,\">= 100\":0}}}}\n");
}

TEST(StatWriters, CsvGoldenFile)
{
    stats::StatGroup root("system");
    buildTree(root);

    std::ostringstream os;
    writeStatsCsv(os, root);
    EXPECT_EQ(os.str(),
              "stat,value,description\n"
              "system.reads,10,read count\n"
              "system.pcm.writes,4,write count\n"
              "system.pcm.perBank::b0,0,per-bank writes\n"
              "system.pcm.perBank::b1,3,per-bank writes\n"
              "system.pcm.perBank::total,3,per-bank writes\n"
              "system.pcm.fast,1,fast writes\n"
              "system.pcm.fastFrac,0.25,fast fraction\n"
              "system.pcm.lat::samples,1,latency\n"
              "system.pcm.lat::mean,50,latency\n"
              "system.pcm.lat::< 100,1,latency\n"
              "system.pcm.lat::>= 100,0,latency\n");
}

namespace
{

/** A separate tree for the histogram stat kind (buildTree predates
 *  it; its golden strings must stay frozen). */
void
buildHistogramTree(stats::StatGroup &root)
{
    stats::HistogramStat &h = root.addHistogram("lat", "latency");
    h.add(0);
    h.add(1);
    h.add(5);
    h.add(6);
}

} // namespace

TEST(StatWriters, HistogramJsonGoldenFormat)
{
    stats::StatGroup root("telemetry");
    buildHistogramTree(root);

    std::ostringstream os;
    writeStatsJson(os, root, /*pretty=*/false);
    EXPECT_EQ(os.str(),
              "{\"lat\":{\"samples\":4,\"mean\":3,\"min\":0,\"max\":6,"
              "\"buckets\":{\"0\":1,\"[1,2)\":1,\"[4,8)\":2}}}\n");
}

TEST(StatWriters, HistogramCsvGoldenFormat)
{
    stats::StatGroup root("telemetry");
    buildHistogramTree(root);

    std::ostringstream os;
    writeStatsCsv(os, root);
    // Bucket labels contain commas, so those stat names are quoted.
    EXPECT_EQ(os.str(),
              "stat,value,description\n"
              "telemetry.lat::samples,4,latency\n"
              "telemetry.lat::mean,3,latency\n"
              "telemetry.lat::min,0,latency\n"
              "telemetry.lat::max,6,latency\n"
              "telemetry.lat::0,1,latency\n"
              "\"telemetry.lat::[1,2)\",1,latency\n"
              "\"telemetry.lat::[4,8)\",2,latency\n");
}

TEST(StatWriters, HistogramTextDumpListsMomentsAndBuckets)
{
    stats::StatGroup root("telemetry");
    buildHistogramTree(root);

    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    for (const char *needle :
         {"telemetry.lat::samples", "telemetry.lat::mean",
          "telemetry.lat::min", "telemetry.lat::max",
          "telemetry.lat::0", "telemetry.lat::[1,2)",
          "telemetry.lat::[4,8)"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing line: " << needle;
    }
    // Empty buckets are elided, not printed as zeros.
    EXPECT_EQ(text.find("telemetry.lat::[2,4)"), std::string::npos);
}

TEST(StatWriters, ReExportIsByteIdentical)
{
    stats::StatGroup root("system");
    buildTree(root);

    std::ostringstream a, b;
    writeStatsJson(a, root);
    writeStatsJson(b, root);
    EXPECT_EQ(a.str(), b.str());
}

/**
 * The whole point of the deterministic formatting contract: two
 * identically configured and seeded simulations export byte-identical
 * stats JSON (golden-file regression workflows depend on this).
 */
TEST(StatWriters, IdenticalSeededRunsExportIdenticalJson)
{
    const auto runOnce = [] {
        sys::SystemConfig cfg;
        cfg.workload = trace::workloadFromName("GemsFDTD");
        cfg.scheme = sys::Scheme::rrmScheme();
        cfg.windowSeconds = 0.002;
        sys::System system(std::move(cfg));
        system.run();
        std::ostringstream os;
        writeStatsJson(os, system.statRoot());
        return os.str();
    };

    const std::string first = runOnce();
    const std::string second = runOnce();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}
