/**
 * @file
 * Tests for benchmark profiles, the trace generator, and workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.hh"
#include "trace/generator.hh"
#include "trace/workload.hh"

namespace rrm::trace
{
namespace
{

class AllBenchmarks : public ::testing::TestWithParam<Benchmark>
{};

TEST_P(AllBenchmarks, ProfileIsWellFormed)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.memOpsPerKiloInstr, 0.0);
    EXPECT_LE(p.memOpsPerKiloInstr, 1000.0);
    EXPECT_GT(p.tableMpki, 0.0);
    EXPECT_FALSE(p.patterns.empty());
    for (const auto &spec : p.patterns) {
        EXPECT_GT(spec.weight, 0.0);
        EXPECT_GE(spec.writeFraction, 0.0);
        EXPECT_LE(spec.writeFraction, 1.0);
        EXPECT_GT(spec.footprintBytes, 0u);
    }
}

TEST_P(AllBenchmarks, FootprintFitsPerCoreSlice)
{
    // 8 GB / 4 cores.
    EXPECT_LE(benchmarkProfile(GetParam()).footprintBytes(), 2_GiB);
}

TEST_P(AllBenchmarks, NameRoundTrips)
{
    EXPECT_EQ(benchmarkFromName(benchmarkName(GetParam())),
              GetParam());
}

TEST_P(AllBenchmarks, GeneratorStaysInFootprint)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    TraceGenerator gen(p, 42);
    for (int i = 0; i < 50000; ++i) {
        const TraceRecord rec = gen.next();
        ASSERT_LT(rec.addr, gen.footprintBytes());
    }
}

TEST_P(AllBenchmarks, GeneratorIsDeterministicPerSeed)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    TraceGenerator a(p, 7), b(p, 7);
    for (int i = 0; i < 5000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.type, rb.type);
        ASSERT_EQ(ra.gapInstructions, rb.gapInstructions);
    }
}

TEST_P(AllBenchmarks, DifferentSeedsProduceDifferentStreams)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    TraceGenerator a(p, 1), b(p, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().addr == b.next().addr;
    EXPECT_LT(same, 500);
}

TEST_P(AllBenchmarks, GapMeanMatchesMemoryIntensity)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    TraceGenerator gen(p, 3);
    double gap_sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        gap_sum += gen.next().gapInstructions;
    const double expected =
        (1000.0 - p.memOpsPerKiloInstr) / p.memOpsPerKiloInstr;
    EXPECT_NEAR(gap_sum / n, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Table7, AllBenchmarks,
                         ::testing::ValuesIn(allBenchmarks),
                         [](const auto &info) {
                             return std::string(
                                 benchmarkName(info.param));
                         });

TEST(TraceGenerator, ComponentsDoNotOverlap)
{
    // Build a profile with tiny distinguishable components and check
    // each pattern's addresses stay within its slot.
    const BenchmarkProfile &p = benchmarkProfile(Benchmark::GemsFDTD);
    TraceGenerator gen(p, 5);
    // Total footprint is the sum of the component footprints.
    std::uint64_t sum = 0;
    for (const auto &spec : p.patterns)
        sum += (spec.footprintBytes + 63) / 64 * 64;
    EXPECT_EQ(gen.footprintBytes(), sum);
}

TEST(TraceGenerator, UnknownBenchmarkNameIsFatal)
{
    EXPECT_THROW(benchmarkFromName("quake3"), FatalError);
}

TEST(Workload, SingleWorkloadRunsFourCopies)
{
    const Workload w = singleWorkload(Benchmark::Mcf);
    EXPECT_EQ(w.name, "mcf");
    for (Benchmark b : w.perCore)
        EXPECT_EQ(b, Benchmark::Mcf);
}

TEST(Workload, MixCompositionsMatchTable7)
{
    const Workload m1 = mix1Workload();
    EXPECT_EQ(m1.name, "MIX_1");
    EXPECT_EQ(m1.perCore[0], Benchmark::Mcf);
    EXPECT_EQ(m1.perCore[1], Benchmark::Bwaves);
    EXPECT_EQ(m1.perCore[2], Benchmark::Zeusmp);
    EXPECT_EQ(m1.perCore[3], Benchmark::Milc);

    const Workload m2 = mix2Workload();
    EXPECT_EQ(m2.name, "MIX_2");
    EXPECT_EQ(m2.perCore[0], Benchmark::GemsFDTD);
    EXPECT_EQ(m2.perCore[1], Benchmark::Libquantum);
    EXPECT_EQ(m2.perCore[2], Benchmark::Lbm);
    EXPECT_EQ(m2.perCore[3], Benchmark::Leslie3d);
}

TEST(Workload, StandardSetHasElevenEntries)
{
    const auto all = standardWorkloads();
    ASSERT_EQ(all.size(), 11u);
    EXPECT_EQ(all.front().name, "bwaves");
    EXPECT_EQ(all[9].name, "MIX_1");
    EXPECT_EQ(all[10].name, "MIX_2");
}

TEST(Workload, FromNameFindsAllStandardWorkloads)
{
    for (const auto &w : standardWorkloads())
        EXPECT_EQ(workloadFromName(w.name).name, w.name);
    EXPECT_THROW(workloadFromName("doom"), FatalError);
}

} // namespace
} // namespace rrm::trace
