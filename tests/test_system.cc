/**
 * @file
 * End-to-end integration tests: whole-system runs across schemes,
 * checking the qualitative relationships the paper reports
 * (performance ordering, lifetime ordering, refresh-wear dominance)
 * plus determinism and config validation. Runs use short windows to
 * stay fast; the full-length reproduction lives in bench/.
 */

#include <gtest/gtest.h>

#include "common/math_util.hh"
#include "system/system.hh"

namespace rrm::sys
{
namespace
{

SystemConfig
quickConfig(const std::string &workload, Scheme scheme)
{
    SystemConfig cfg;
    cfg.workload = trace::workloadFromName(workload);
    cfg.scheme = scheme;
    cfg.timeScale = 50.0;
    cfg.windowSeconds = 0.012;
    cfg.warmupFraction = 0.25;
    cfg.seed = 1;
    return cfg;
}

SimResults
runQuick(const std::string &workload, Scheme scheme)
{
    System system(quickConfig(workload, scheme));
    return system.run();
}

TEST(SystemIntegration, RunCompletesAndPopulatesResults)
{
    const SimResults r =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets7));
    EXPECT_EQ(r.workload, "GemsFDTD");
    EXPECT_EQ(r.scheme, "Static-7-SETs");
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_GT(r.aggregateIpc, 0.0);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_GT(r.memReads, 0u);
    EXPECT_GT(r.demandWrites, 0u);
    EXPECT_GT(r.lifetimeYears, 0.0);
    EXPECT_NEAR(r.windowSeconds, 0.009, 1e-9);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(r.instructions[c], 0u) << "core " << c;
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    const SimResults a =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets5));
    const SimResults b =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets5));
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_DOUBLE_EQ(a.aggregateIpc, b.aggregateIpc);
}

TEST(SystemIntegration, SeedChangesTheRun)
{
    SystemConfig cfg = quickConfig(
        "zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets5));
    cfg.seed = 99;
    System system(std::move(cfg));
    const SimResults b = system.run();
    const SimResults a =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets5));
    EXPECT_NE(a.totalInstructions, b.totalInstructions);
}

TEST(SystemIntegration, ShorterWritesGiveHigherIpc)
{
    const SimResults slow =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets7));
    const SimResults fast =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets3));
    EXPECT_GT(fast.aggregateIpc, slow.aggregateIpc * 1.05);
}

TEST(SystemIntegration, RrmSitsBetweenTheStaticExtremes)
{
    const SimResults slow =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets7));
    const SimResults fast =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets3));
    const SimResults rrm = runQuick("GemsFDTD", Scheme::rrmScheme());
    // Performance: above the slow baseline, below (or at) the fast one.
    EXPECT_GT(rrm.aggregateIpc, slow.aggregateIpc);
    EXPECT_LT(rrm.aggregateIpc, fast.aggregateIpc * 1.02);
    // Lifetime: far above Static-3, below Static-7.
    EXPECT_GT(rrm.lifetimeYears, 3.0 * fast.lifetimeYears);
    EXPECT_LT(rrm.lifetimeYears, slow.lifetimeYears * 1.02);
}

TEST(SystemIntegration, RrmIssuesFastWritesAndRefreshes)
{
    // Use a stronger time compression so a selective-refresh round
    // (interval = 2 s / timeScale) lands inside the short window.
    SystemConfig cfg = quickConfig("GemsFDTD", Scheme::rrmScheme());
    cfg.timeScale = 250.0;
    System system(std::move(cfg));
    const SimResults rrm = system.run();
    EXPECT_GT(rrm.fastWrites, 0u);
    EXPECT_GT(rrm.fastWriteFraction(), 0.10);
    EXPECT_GT(rrm.rrmFastRefreshes, 0u);
    EXPECT_GT(rrm.rrmPromotions + rrm.rrmHotEntriesAtEnd, 0u);
}

TEST(SystemIntegration, StaticSchemesNeverIssueRrmRefreshes)
{
    const SimResults r =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets3));
    EXPECT_EQ(r.rrmFastRefreshes, 0u);
    EXPECT_EQ(r.rrmSlowRefreshes, 0u);
    EXPECT_DOUBLE_EQ(r.rrmRefreshRate, 0.0);
    EXPECT_EQ(r.fastWrites, 0u);
}

TEST(SystemIntegration, RefreshWearDominatesStatic3)
{
    const SimResults r =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets3));
    // Whole-array refresh every 2.01 s dwarfs demand writes (Fig 4).
    EXPECT_GT(r.globalRefreshRate, 3.0 * r.demandWriteRate);
}

TEST(SystemIntegration, RefreshWearNegligibleForStatic7AndRrm)
{
    const SimResults s7 =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets7));
    EXPECT_LT(s7.globalRefreshRate, 0.1 * s7.demandWriteRate);
    const SimResults rrm = runQuick("GemsFDTD", Scheme::rrmScheme());
    EXPECT_LT(rrm.rrmRefreshRate + rrm.globalRefreshRate,
              0.5 * rrm.demandWriteRate);
}

TEST(SystemIntegration, Static3LifetimeMatchesPaperBallpark)
{
    const SimResults r =
        runQuick("GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets3));
    // The paper reports ~0.3 years; refresh-bound, so workload
    // differences barely move it.
    EXPECT_GT(r.lifetimeYears, 0.15);
    EXPECT_LT(r.lifetimeYears, 0.35);
}

TEST(SystemIntegration, EnergyDominatedByRefreshForStatic3)
{
    const SimResults r =
        runQuick("zeusmp", Scheme::staticScheme(pcm::WriteMode::Sets3));
    EXPECT_GT(r.globalRefreshPower,
              r.demandWritePower + r.readPower);
}

TEST(SystemIntegration, RrmRefreshPowerIsSmall)
{
    const SimResults r = runQuick("GemsFDTD", Scheme::rrmScheme());
    EXPECT_LT(r.rrmRefreshPower, 0.2 * r.totalPower());
    EXPECT_GT(r.totalPower(), 0.0);
}

TEST(SystemIntegration, MpkiIsSchemeIndependent)
{
    // Cache behaviour is a property of the workload, not the write
    // scheme: MPKI must agree across schemes within noise.
    const SimResults a =
        runQuick("milc", Scheme::staticScheme(pcm::WriteMode::Sets7));
    const SimResults b =
        runQuick("milc", Scheme::staticScheme(pcm::WriteMode::Sets3));
    EXPECT_NEAR(a.mpki, b.mpki, a.mpki * 0.05);
}

TEST(SystemIntegration, HigherThresholdLowersFastWriteShare)
{
    SystemConfig lo = quickConfig("GemsFDTD", Scheme::rrmScheme());
    lo.rrm.hotThreshold = 4;
    SystemConfig hi = quickConfig("GemsFDTD", Scheme::rrmScheme());
    hi.rrm.hotThreshold = 64;
    System sys_lo(std::move(lo)), sys_hi(std::move(hi));
    const SimResults rlo = sys_lo.run();
    const SimResults rhi = sys_hi.run();
    EXPECT_GT(rlo.fastWriteFraction(), rhi.fastWriteFraction());
}

TEST(SystemIntegration, MixWorkloadsRun)
{
    const SimResults r = runQuick("MIX_2", Scheme::rrmScheme());
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_GT(r.demandWrites, 0u);
}

TEST(SystemIntegration, RegionProfilerCapturesHotConcentration)
{
    SystemConfig cfg = quickConfig(
        "GemsFDTD", Scheme::staticScheme(pcm::WriteMode::Sets7));
    cfg.profileRegionWrites = true;
    System system(std::move(cfg));
    system.run();
    const RegionWriteProfiler *prof = system.regionProfiler();
    ASSERT_NE(prof, nullptr);
    EXPECT_GT(prof->totalWrites(), 0u);
    // Table III shape: a small fraction of regions gets most writes,
    // and the overwhelming majority of memory is never written.
    EXPECT_LT(prof->hotRegionFraction(0.9), 0.05);
    EXPECT_GT(static_cast<double>(prof->neverWrittenRegions()) /
                  static_cast<double>(prof->totalRegions()),
              0.9);
}

TEST(SystemIntegration, ConfigValidationRejectsNonsense)
{
    SystemConfig cfg;
    EXPECT_THROW(System{cfg}, FatalError); // no workload

    cfg = quickConfig("lbm", Scheme::rrmScheme());
    cfg.timeScale = 0.0;
    EXPECT_THROW(System{std::move(cfg)}, FatalError);

    cfg = quickConfig("lbm", Scheme::rrmScheme());
    cfg.windowSeconds = -1.0;
    EXPECT_THROW(System{std::move(cfg)}, FatalError);

    cfg = quickConfig("lbm", Scheme::rrmScheme());
    cfg.warmupFraction = 1.0;
    EXPECT_THROW(System{std::move(cfg)}, FatalError);
}

TEST(SystemIntegration, ConfigValidationAggregatesEveryProblem)
{
    SystemConfig cfg = quickConfig("lbm", Scheme::rrmScheme());
    cfg.timeScale = 0.0;
    cfg.windowSeconds = -1.0;
    cfg.warmupFraction = 1.5;
    const std::vector<std::string> errors = cfg.validate();
    EXPECT_GE(errors.size(), 3u);

    // The ctor reports all of them in one message, not just the first.
    try {
        System system(std::move(cfg));
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("problem(s)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("time scale must be >= 1"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("window must be positive"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("warmup fraction must be in [0, 1)"),
                  std::string::npos)
            << msg;
    }
}

TEST(SystemIntegration, ConfigValidationFlagsIgnoredRrmSettings)
{
    // RRM knobs configured under a Static scheme would be silently
    // dead; validation calls it out.
    SystemConfig cfg =
        quickConfig("lbm", Scheme::staticScheme(pcm::WriteMode::Sets7));
    cfg.rrm.hotThreshold = 8;
    const std::vector<std::string> errors = cfg.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("RRM configured but the scheme is"),
              std::string::npos)
        << errors[0];
}

TEST(SystemIntegration, CountOnlyRefreshTimingStillCountsWear)
{
    SystemConfig cfg = quickConfig("GemsFDTD", Scheme::rrmScheme());
    cfg.timeScale = 250.0; // fit a refresh round into the window
    cfg.refreshTiming = RefreshTimingMode::CountOnly;
    System system(std::move(cfg));
    const SimResults r = system.run();
    EXPECT_GT(r.rrmFastRefreshes, 0u);
    EXPECT_GT(r.rrmRefreshRate, 0.0);
}

} // namespace
} // namespace rrm::sys
