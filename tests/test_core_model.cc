/**
 * @file
 * Tests for the trace-driven core model: miss issuing, MSHR limits,
 * ROB-occupancy stalls, and resume behaviour. Uses a fake CorePort so
 * the memory system can be scripted.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core_model.hh"

namespace rrm::cpu
{
namespace
{

/** Scripted memory system: records fills; completion on demand. */
struct FakePort : public CorePort
{
    struct Fill
    {
        unsigned core;
        Addr line;
        bool isWrite;
        Tick when;
    };

    std::deque<Fill> fills;
    bool accept = true;
    int refusals = 0;
    std::vector<cache::HierarchyEvents> events;

    bool
    requestFill(unsigned core, Addr line, bool is_write,
                Tick when) override
    {
        if (!accept) {
            ++refusals;
            return false;
        }
        fills.push_back({core, line, is_write, when});
        return true;
    }

    void
    handleAccessEvents(unsigned, const cache::HierarchyEvents &ev,
                       Tick) override
    {
        events.push_back(ev);
    }
};

/** A pointer-chase profile over a footprint far beyond the caches. */
trace::BenchmarkProfile
missHeavyProfile()
{
    trace::PatternSpec spec{};
    spec.kind = trace::PatternSpec::Kind::Chase;
    spec.weight = 1.0;
    spec.footprintBytes = 64_MiB;
    spec.writeFraction = 0.0;
    return trace::BenchmarkProfile{"chase", 500.0, 0.0, {spec}};
}

/** A profile whose entire footprint fits in the L1. */
trace::BenchmarkProfile
hitHeavyProfile()
{
    trace::PatternSpec spec{};
    spec.kind = trace::PatternSpec::Kind::ZipfRegion;
    spec.weight = 1.0;
    spec.footprintBytes = 8_KiB;
    spec.writeFraction = 0.2;
    spec.zipfSkew = 0.5;
    spec.regionBytes = 4096;
    return trace::BenchmarkProfile{"resident", 200.0, 0.0, {spec}};
}

struct Fixture
{
    EventQueue queue;
    cache::CacheHierarchy hierarchy;
    FakePort port;
    CoreParams params;

    Fixture() : hierarchy(smallHierarchy()) {}

    static cache::HierarchyConfig
    smallHierarchy()
    {
        cache::HierarchyConfig cfg;
        cfg.numCores = 1;
        cfg.l1.sizeBytes = 4096;
        cfg.l2.sizeBytes = 8192;
        cfg.llc.sizeBytes = 16384;
        return cfg;
    }

    CoreModel
    makeCore(const trace::BenchmarkProfile &profile)
    {
        return CoreModel(0, params, trace::TraceSource::generate(profile, 1),
                         hierarchy, port, queue, 0);
    }
};

TEST(CoreModel, MissHeavyTraceIssuesFills)
{
    Fixture f;
    // Keep per-benchmark static storage alive across the test.
    const auto profile = missHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(10_us);
    EXPECT_FALSE(f.port.fills.empty());
    EXPECT_GT(core.instructionsRetired(), 0u);
}

TEST(CoreModel, StallsAtMshrLimitAndResumesOnCompletion)
{
    Fixture f;
    f.params.maxOutstandingMisses = 4;
    f.params.robSize = 100000; // loads never block retirement here
    const auto profile = missHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(100_us);
    // With no completions, exactly maxOutstandingMisses fills issue.
    EXPECT_EQ(f.port.fills.size(), 4u);
    EXPECT_TRUE(core.stalled());

    // Complete one fill: the core must issue another.
    const Addr line = f.port.fills.front().line;
    f.port.fills.pop_front();
    core.onFillComplete(line);
    f.queue.run(200_us);
    EXPECT_EQ(f.port.fills.size(), 4u);
}

TEST(CoreModel, RobLimitsRunaheadPastBlockedLoad)
{
    Fixture f;
    f.params.robSize = 64;
    f.params.maxOutstandingMisses = 100;
    const auto profile = missHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(100_us);
    EXPECT_TRUE(core.stalled());
    // With a ~500 memops/kinst chase trace, a 64-entry ROB admits
    // only a couple of misses before the oldest blocks retirement.
    EXPECT_LT(f.port.fills.size(), 70u);
    const auto issued_before = f.port.fills.size();

    // Completing the oldest load unblocks further dispatch.
    const Addr line = f.port.fills.front().line;
    f.port.fills.pop_front();
    core.onFillComplete(line);
    f.queue.run(200_us);
    EXPECT_GT(f.port.fills.size() + 1, issued_before);
}

TEST(CoreModel, HitHeavyTraceRunsWithoutMemory)
{
    Fixture f;
    const auto profile = hitHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(10_us);
    // Footprint fits in the hierarchy: after cold misses the core
    // retires instructions with no further fills.
    const auto early_fills = f.port.fills.size();
    const auto early_instr = core.instructionsRetired();
    for (auto &fill : f.port.fills)
        core.onFillComplete(fill.line);
    f.port.fills.clear();
    f.queue.run(100_us);
    EXPECT_GT(core.instructionsRetired(), early_instr);
    EXPECT_LE(f.port.fills.size(), early_fills + 256);
}

TEST(CoreModel, RefusedFillStallsUntilResume)
{
    Fixture f;
    f.port.accept = false;
    const auto profile = missHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(10_us);
    EXPECT_TRUE(core.stalled());
    EXPECT_GE(f.port.refusals, 1);
    const auto instr_stalled = core.instructionsRetired();

    f.port.accept = true;
    core.resume();
    f.queue.run(20_us);
    EXPECT_GT(core.instructionsRetired(), instr_stalled);
    EXPECT_FALSE(f.port.fills.empty());
}

TEST(CoreModel, ResumeWithoutResourceStallIsNoOp)
{
    Fixture f;
    const auto profile = hitHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    EXPECT_NO_THROW(core.resume());
    f.queue.run(1_us);
}

TEST(CoreModel, UnknownFillCompletionPanics)
{
    Fixture f;
    const auto profile = hitHeavyProfile();
    CoreModel core = f.makeCore(profile);
    EXPECT_THROW(core.onFillComplete(0x123440), PanicError);
}

TEST(CoreModel, IpcReflectsRetiredInstructions)
{
    Fixture f;
    const auto profile = hitHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(100_us);
    const double ipc = core.ipc(100_us);
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, f.params.width);
    EXPECT_NEAR(ipc,
                static_cast<double>(core.instructionsRetired()) /
                    (100_us / f.params.cycle),
                0.01);
}

TEST(CoreModel, ResetInstructionCountForWarmup)
{
    Fixture f;
    const auto profile = hitHeavyProfile();
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(10_us);
    EXPECT_GT(core.instructionsRetired(), 0u);
    core.resetInstructionCount();
    EXPECT_EQ(core.instructionsRetired(), 0u);
}

TEST(CoreModel, MergesSecondaryMissesToSameLine)
{
    Fixture f;
    // Chase over a tiny footprint: repeated misses on few lines.
    trace::PatternSpec spec{};
    spec.kind = trace::PatternSpec::Kind::Chase;
    spec.weight = 1.0;
    spec.footprintBytes = 128; // two blocks only
    spec.writeFraction = 0.5;
    const trace::BenchmarkProfile profile{"two_blocks", 500.0, 0.0,
                                          {spec}};
    CoreModel core = f.makeCore(profile);
    core.start();
    f.queue.run(10_us);
    // Both lines miss once; every later access merges. At most two
    // outstanding fills can exist.
    EXPECT_LE(f.port.fills.size(), 2u);
}

} // namespace
} // namespace rrm::cpu
